// Package sched is the join scheduler of the serving layer: it wraps a
// long-lived rcj.Engine with the admission control a daemon needs to survive
// heavy traffic. At most MaxConcurrent joins run at once; up to MaxQueue
// further requests wait in strict FIFO order; everything beyond that is
// rejected immediately with ErrOverloaded, so an overloaded server sheds
// load in O(1) instead of accumulating goroutines. Waiters abandon the
// queue when their context ends or QueueTimeout elapses (ErrQueueTimeout),
// admitted joins run under an optional per-request deadline (JoinTimeout),
// and cancelling a request's context propagates promptly into the join
// executor, freeing the slot within a leaf or two.
//
// A scheduler drains gracefully: BeginDrain stops admitting new requests
// (ErrDraining) while already-admitted work — running and queued — streams
// to completion; Drain additionally waits for the last slot to free. This
// is the SIGTERM path of cmd/rcjd.
//
// Per-request statistics ride on the engine's tagged buffer attribution
// (rcj.JoinOptions.Stats): each admitted join reports its exact node
// accesses, page faults, and buffer hit rate even while other joins hammer
// the same pool, and the scheduler aggregates them into a Snapshot for the
// /metrics endpoint.
package sched

import (
	"container/list"
	"context"
	"errors"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"repro/rcj"
)

// Typed admission-control rejections. Servers map these to backpressure
// status codes (429 for overload/timeout, 503 for draining).
var (
	// ErrOverloaded is returned when all join slots are busy and the FIFO
	// queue is at capacity: the request was rejected without waiting.
	ErrOverloaded = errors.New("sched: overloaded: join queue is full")
	// ErrQueueTimeout is returned when a request waited QueueTimeout in the
	// admission queue without a slot freeing up.
	ErrQueueTimeout = errors.New("sched: timed out waiting for a join slot")
	// ErrDraining is returned once BeginDrain/Drain has been called: the
	// scheduler is shutting down and admits no new requests.
	ErrDraining = errors.New("sched: draining, not accepting new joins")
)

// Config sizes a Scheduler. The zero value of a field selects its default.
type Config struct {
	// MaxConcurrent is the number of joins allowed to run simultaneously
	// (default 1).
	MaxConcurrent int
	// MaxQueue bounds how many admitted-but-waiting requests may queue
	// beyond the running ones; 0 means no queue — a request either gets a
	// slot immediately or is rejected with ErrOverloaded. Negative means an
	// unbounded queue (not recommended for serving).
	MaxQueue int
	// QueueTimeout bounds how long one request may wait in the queue before
	// being rejected with ErrQueueTimeout; 0 means wait as long as the
	// request's context allows.
	QueueTimeout time.Duration
	// JoinTimeout is the per-request execution deadline applied to each
	// admitted join (queue wait excluded); 0 means none.
	JoinTimeout time.Duration
	// Batch enables cross-request traversal batching for queued streaming
	// queries (see BatchConfig and batch.go). Disabled by default.
	Batch BatchConfig
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 1
	}
	return c
}

// waiter is one queued admission request. grant removes it from the queue
// (el = nil) before closing ready, so a waiter that finds itself off the
// queue when abandoning knows it owns a slot and must release it.
type waiter struct {
	ready chan struct{}
	el    *list.Element
}

// Snapshot is a point-in-time view of the scheduler's counters, the payload
// of the daemon's /metrics endpoint. Gauge fields (InFlight, Queued) are
// instantaneous; the rest are cumulative since construction.
type Snapshot struct {
	InFlight int  `json:"in_flight"`
	Queued   int  `json:"queued"`
	Draining bool `json:"draining"`

	Admitted             int64 `json:"admitted"`
	Completed            int64 `json:"completed"`
	Failed               int64 `json:"failed"`
	RejectedOverload     int64 `json:"rejected_overload"`
	RejectedQueueTimeout int64 `json:"rejected_queue_timeout"`
	RejectedDraining     int64 `json:"rejected_draining"`

	PairsEmitted int64 `json:"pairs_emitted"`

	// Subscriptions is the number of live continuous-query streams
	// registered via Subscribe (a gauge); Started/Ended are cumulative.
	Subscriptions        int   `json:"subscriptions"`
	SubscriptionsStarted int64 `json:"subscriptions_started"`
	SubscriptionsEnded   int64 `json:"subscriptions_ended"`

	// BoundKilledCandidates sums rcj.Stats.BoundKilledCandidates over served
	// joins: candidates a TopK run's tightened diameter bound killed before
	// verification — branch-and-bound work the serving tier saved.
	BoundKilledCandidates int64 `json:"bound_killed_candidates"`

	// SharedBatches counts envelope traversals that served more than one
	// request; BatchedRequests counts the requests those traversals served
	// (see batch.go). OpenBatches/OpenBatchMembers are gauges: batches still
	// forming in the queue and the requests riding them. All stay zero
	// unless Config.Batch.Enabled.
	SharedBatches    int64 `json:"shared_batches"`
	BatchedRequests  int64 `json:"batched_requests"`
	OpenBatches      int   `json:"open_batches"`
	OpenBatchMembers int   `json:"open_batch_members"`

	// Exact tagged buffer attribution summed over completed serving joins.
	BufferAccesses int64 `json:"buffer_accesses"`
	BufferHits     int64 `json:"buffer_hits"`
	BufferMisses   int64 `json:"buffer_misses"`

	// QueueWait distributes the admission wait of every admitted request
	// (immediate grants land in the lowest bucket); JoinLatency distributes
	// the execution time of every join that terminated (completed or
	// failed), queue wait excluded. Histograms, not just counters, so the
	// 429 tuning (MaxQueue, QueueTimeout, MaxConcurrent) is driven by the
	// shape of the wait distribution rather than an average.
	QueueWait   HistogramSnapshot `json:"queue_wait"`
	JoinLatency HistogramSnapshot `json:"join_latency"`
}

// BufferHitRatio returns the aggregate buffer hit rate over served joins.
func (s Snapshot) BufferHitRatio() float64 {
	if s.BufferAccesses == 0 {
		return 0
	}
	return float64(s.BufferHits) / float64(s.BufferAccesses)
}

// Scheduler wraps an Engine with bounded-concurrency admission control.
// All methods are safe for concurrent use.
type Scheduler struct {
	eng *rcj.Engine
	cfg Config

	mu       sync.Mutex
	running  int
	queue    *list.List // of *waiter, front = next to be granted
	draining bool
	drained  chan struct{}          // closed when draining and the last admitted work ends
	closed   bool                   // drained has been closed
	batches  map[batchKey]*batch    // open (unsealed) batches, guarded by mu
	subs     map[*subEntry]struct{} // live subscriptions (see Subscribe), guarded by mu

	admitted             atomic.Int64
	completed            atomic.Int64
	failed               atomic.Int64
	rejectedOverload     atomic.Int64
	rejectedQueueTimeout atomic.Int64
	rejectedDraining     atomic.Int64
	pairsEmitted         atomic.Int64
	boundKilled          atomic.Int64
	batchesRun           atomic.Int64
	batchedReqs          atomic.Int64
	bufAccesses          atomic.Int64
	bufHits              atomic.Int64
	bufMisses            atomic.Int64
	subsStarted          atomic.Int64
	subsEnded            atomic.Int64

	queueWait   histogram
	joinLatency histogram
}

// New returns a scheduler admitting joins into eng under cfg's bounds.
func New(eng *rcj.Engine, cfg Config) *Scheduler {
	return &Scheduler{
		eng:     eng,
		cfg:     cfg.withDefaults(),
		queue:   list.New(),
		drained: make(chan struct{}),
		batches: make(map[batchKey]*batch),
		subs:    make(map[*subEntry]struct{}),
	}
}

// Engine returns the engine the scheduler admits joins into.
func (s *Scheduler) Engine() *rcj.Engine { return s.eng }

// Config returns the scheduler's effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Acquire blocks until the caller owns a join slot, the context ends, or
// admission control rejects the request (ErrOverloaded, ErrQueueTimeout,
// ErrDraining). On success the returned release function must be called
// exactly once when the work is done; it is idempotent. Acquire is exported
// for callers scheduling non-Join work (e.g. L1 joins) under the same
// admission bounds.
func (s *Scheduler) Acquire(ctx context.Context) (release func(), err error) {
	start := time.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejectedDraining.Add(1)
		return nil, ErrDraining
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if s.running < s.cfg.MaxConcurrent {
		s.running++
		s.mu.Unlock()
		s.admitted.Add(1)
		s.queueWait.observe(time.Since(start))
		return s.releaseOnce(), nil
	}
	if s.cfg.MaxQueue >= 0 && s.queue.Len() >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.rejectedOverload.Add(1)
		return nil, ErrOverloaded
	}
	w := &waiter{ready: make(chan struct{})}
	w.el = s.queue.PushBack(w)
	s.mu.Unlock()

	var timeout <-chan time.Time
	if s.cfg.QueueTimeout > 0 {
		t := time.NewTimer(s.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ready:
		s.admitted.Add(1)
		s.queueWait.observe(time.Since(start))
		return s.releaseOnce(), nil
	case <-ctx.Done():
		if s.abandon(w) {
			return nil, ctx.Err()
		}
		// Granted concurrently with the cancellation: we own a slot we will
		// never use — hand it back before reporting the error.
		s.release()
		return nil, ctx.Err()
	case <-timeout:
		if s.abandon(w) {
			s.rejectedQueueTimeout.Add(1)
			return nil, ErrQueueTimeout
		}
		s.release()
		s.rejectedQueueTimeout.Add(1)
		return nil, ErrQueueTimeout
	}
}

// abandon removes w from the queue, reporting false if w was already
// granted a slot (and is therefore no longer queued).
func (s *Scheduler) abandon(w *waiter) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.el == nil {
		return false
	}
	s.queue.Remove(w.el)
	w.el = nil
	return true
}

// releaseOnce wraps release for hand-out: callers may be sloppy about
// double-invoking it on error paths without corrupting the slot count.
func (s *Scheduler) releaseOnce() func() {
	var once sync.Once
	return func() { once.Do(s.release) }
}

// release frees one slot: the queue head inherits it (FIFO), otherwise the
// running count drops; the last release during a drain closes drained.
// Queued waiters were admitted before the drain began, so a drain lets them
// run rather than rejecting work the server already accepted.
func (s *Scheduler) release() {
	s.mu.Lock()
	if el := s.queue.Front(); el != nil {
		w := el.Value.(*waiter)
		s.queue.Remove(el)
		w.el = nil
		close(w.ready) // slot transfers; running count is unchanged
		s.mu.Unlock()
		return
	}
	s.running--
	s.maybeDrainedLocked()
	s.mu.Unlock()
}

// maybeDrainedLocked closes drained once a draining scheduler has no
// admitted work left — no running joins, no queued waiters, and no live
// subscriptions. Callers hold s.mu.
func (s *Scheduler) maybeDrainedLocked() {
	if s.draining && s.running == 0 && s.queue.Len() == 0 && len(s.subs) == 0 && !s.closed {
		s.closed = true
		close(s.drained)
	}
}

// BeginDrain stops admitting new requests (they fail with ErrDraining).
// Running and already-queued joins proceed to completion; live
// subscriptions have their contexts cancelled — a subscription is unbounded
// work, so a drain ends it rather than waiting for it — and the drain
// completes once each has unregistered. Safe to call more than once.
func (s *Scheduler) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	for e := range s.subs {
		e.cancel()
	}
	s.maybeDrainedLocked()
	s.mu.Unlock()
}

// Drain begins draining (if not already) and blocks until every admitted
// join has finished or ctx ends, returning ctx.Err() in the latter case.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.BeginDrain()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether BeginDrain/Drain has been called.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Join admits a streaming join: it blocks in admission control (so typed
// rejections surface before any result bytes are produced), then returns a
// single-use iterator streaming the pairs exactly as rcj.Engine.Join would.
// The slot is held until the iterator terminates — completion, error, or
// the consumer breaking out — and is released automatically then; callers
// must consume (or at least begin and break out of) the iterator. When
// stats is non-nil it receives the join's exact per-request statistics once
// the iterator has terminated.
func (s *Scheduler) Join(ctx context.Context, q, p *rcj.Index, opts rcj.JoinOptions, stats *rcj.Stats) (iter.Seq2[rcj.Pair, error], error) {
	return s.admit(ctx, stats, func(jctx context.Context, st *rcj.Stats) iter.Seq2[rcj.Pair, error] {
		o := opts
		o.Stats = st
		return s.eng.Join(jctx, q, p, o)
	})
}

// SelfJoin is Join for the self-join of one index.
func (s *Scheduler) SelfJoin(ctx context.Context, ix *rcj.Index, opts rcj.JoinOptions, stats *rcj.Stats) (iter.Seq2[rcj.Pair, error], error) {
	return s.admit(ctx, stats, func(jctx context.Context, st *rcj.Stats) iter.Seq2[rcj.Pair, error] {
		o := opts
		o.Stats = st
		return s.eng.SelfJoin(jctx, ix, o)
	})
}

// resolve routes an unforced query through the cost-based planner, feeding
// it the scheduler's live pressure (free slots, queue depth) so the chosen
// fan-out respects concurrent load — and so the batch key downstream groups
// by the RESOLVED algorithm, not the unplanned zero value. Resolution is
// idempotent: queries a server already resolved take the fixed path
// untouched. Invalid queries pass through unresolved so the engine surfaces
// their validation error.
func (s *Scheduler) resolve(q, p *rcj.Index, qry rcj.Query, self bool) rcj.Query {
	if qry.Validate() != nil {
		return qry
	}
	resolved, dec := qry.ResolveObserved(q, p, self, s.Observe(q, p))
	if resolved.PlanOut != nil {
		*resolved.PlanOut = dec
	}
	return resolved
}

// Observe merges the inputs' pool-derived planner feedback (rcj.Observe)
// with the scheduler's live pressure: free slots damp the planner's chosen
// fan-out while concurrent joins already hold the CPUs.
func (s *Scheduler) Observe(q, p *rcj.Index) rcj.PlanObserved {
	obs := rcj.Observe(q, p)
	s.mu.Lock()
	obs.FreeSlots = s.cfg.MaxConcurrent - s.running
	obs.QueueDepth = s.queue.Len()
	s.mu.Unlock()
	if obs.FreeSlots < 1 {
		// This request will own a slot once admitted; never report "unknown"
		// (0) under saturation, which would let the fan-out default win.
		obs.FreeSlots = 1
	}
	return obs
}

// Run admits a streaming v2 query (predicate pushdown: top-k, max-diameter,
// region window, limit) under the same admission control as Join. See Join
// for the slot lifecycle and stats contract.
func (s *Scheduler) Run(ctx context.Context, q, p *rcj.Index, qry rcj.Query, stats *rcj.Stats) (iter.Seq2[rcj.Pair, error], error) {
	qry = s.resolve(q, p, qry, false)
	if seq, err, handled := s.runBatched(ctx, q, p, qry, false, stats); handled {
		return seq, err
	}
	return s.admit(ctx, stats, func(jctx context.Context, st *rcj.Stats) iter.Seq2[rcj.Pair, error] {
		r := qry
		r.Stats = st
		return s.eng.Run(jctx, q, p, r)
	})
}

// RunSelf is Run for the self-join of one index.
func (s *Scheduler) RunSelf(ctx context.Context, ix *rcj.Index, qry rcj.Query, stats *rcj.Stats) (iter.Seq2[rcj.Pair, error], error) {
	qry = s.resolve(ix, ix, qry, true)
	if seq, err, handled := s.runBatched(ctx, ix, ix, qry, true, stats); handled {
		return seq, err
	}
	return s.admit(ctx, stats, func(jctx context.Context, st *rcj.Stats) iter.Seq2[rcj.Pair, error] {
		r := qry
		r.Stats = st
		return s.eng.RunSelf(jctx, ix, r)
	})
}

// JoinCollect is the materializing convenience over Join, for callers that
// do not stream (batch tools, tests).
func (s *Scheduler) JoinCollect(ctx context.Context, q, p *rcj.Index, opts rcj.JoinOptions) ([]rcj.Pair, rcj.Stats, error) {
	var st rcj.Stats
	seq, err := s.Join(ctx, q, p, opts, &st)
	if err != nil {
		return nil, rcj.Stats{}, err
	}
	pairs, err := rcj.Collect(seq)
	if err != nil {
		return nil, st, err
	}
	return pairs, st, nil
}

// admit runs the admission pipeline around one streaming join: acquire a
// slot, apply the per-request deadline, stream, account, release.
func (s *Scheduler) admit(ctx context.Context, stats *rcj.Stats, mk func(context.Context, *rcj.Stats) iter.Seq2[rcj.Pair, error]) (iter.Seq2[rcj.Pair, error], error) {
	release, err := s.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	return func(yield func(rcj.Pair, error) bool) {
		defer release()
		start := time.Now()
		defer func() { s.joinLatency.observe(time.Since(start)) }()
		jctx := ctx
		cancel := context.CancelFunc(func() {})
		if s.cfg.JoinTimeout > 0 {
			jctx, cancel = context.WithTimeout(ctx, s.cfg.JoinTimeout)
		}
		defer cancel()

		var st rcj.Stats
		var pairs int64
		var failed bool
		for pr, err := range mk(jctx, &st) {
			if err != nil {
				failed = true
				yield(pr, err)
				break
			}
			pairs++
			if !yield(pr, nil) {
				break
			}
		}
		s.pairsEmitted.Add(pairs)
		s.boundKilled.Add(st.BoundKilledCandidates)
		s.bufAccesses.Add(st.NodeAccesses)
		s.bufHits.Add(st.NodeAccesses - st.PageFaults)
		s.bufMisses.Add(st.PageFaults)
		if failed {
			s.failed.Add(1)
		} else {
			s.completed.Add(1)
		}
		if stats != nil {
			*stats = st
		}
	}, nil
}

// Snapshot returns the scheduler's current counters.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	snap := Snapshot{
		InFlight: s.running,
		Queued:   s.queue.Len(),
		Draining: s.draining,
	}
	snap.OpenBatches = len(s.batches)
	for _, b := range s.batches {
		snap.OpenBatchMembers += len(b.members)
	}
	snap.Subscriptions = len(s.subs)
	s.mu.Unlock()
	snap.Admitted = s.admitted.Load()
	snap.Completed = s.completed.Load()
	snap.Failed = s.failed.Load()
	snap.RejectedOverload = s.rejectedOverload.Load()
	snap.RejectedQueueTimeout = s.rejectedQueueTimeout.Load()
	snap.RejectedDraining = s.rejectedDraining.Load()
	snap.PairsEmitted = s.pairsEmitted.Load()
	snap.SubscriptionsStarted = s.subsStarted.Load()
	snap.SubscriptionsEnded = s.subsEnded.Load()
	snap.BoundKilledCandidates = s.boundKilled.Load()
	snap.SharedBatches = s.batchesRun.Load()
	snap.BatchedRequests = s.batchedReqs.Load()
	snap.BufferAccesses = s.bufAccesses.Load()
	snap.BufferHits = s.bufHits.Load()
	snap.BufferMisses = s.bufMisses.Load()
	snap.QueueWait = s.queueWait.snapshot()
	snap.JoinLatency = s.joinLatency.snapshot()
	return snap
}
