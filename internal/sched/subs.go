package sched

import (
	"context"
	"sync"
)

// subEntry is one registered long-lived subscription; only its cancel hook
// lives here — the stream itself belongs to the caller.
type subEntry struct {
	cancel context.CancelFunc
}

// Subscribe registers a long-lived continuous-query stream with the
// scheduler. Subscriptions are not joins — they hold no join slot, since one
// stream can outlive thousands of point lookups — but they are admitted
// work the drain must account for: BeginDrain cancels the returned context
// (ending the stream), and Drain waits until every subscription has called
// its unregister function. The returned unregister is idempotent and must
// be called when the stream ends for any reason. A draining scheduler
// rejects new subscriptions with ErrDraining.
func (s *Scheduler) Subscribe(ctx context.Context) (context.Context, func(), error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejectedDraining.Add(1)
		return nil, nil, ErrDraining
	}
	sctx, cancel := context.WithCancel(ctx)
	e := &subEntry{cancel: cancel}
	s.subs[e] = struct{}{}
	s.mu.Unlock()
	s.subsStarted.Add(1)

	var once sync.Once
	unregister := func() {
		once.Do(func() {
			cancel()
			s.subsEnded.Add(1)
			s.mu.Lock()
			delete(s.subs, e)
			s.maybeDrainedLocked()
			s.mu.Unlock()
		})
	}
	return sctx, unregister, nil
}
