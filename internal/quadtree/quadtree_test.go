package quadtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func buildQuad(t *testing.T, pts []rtree.PointEntry, pool *buffer.Pool, owner uint32) *Tree {
	t.Helper()
	if pool == nil {
		pool = buffer.NewPool(-1)
	}
	tr, err := Build(storage.NewMemPager(storage.DefaultPageSize), pool, Config{Owner: owner}, pts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomEntries(rng *rand.Rand, n int) []rtree.PointEntry {
	pts := make([]rtree.PointEntry, n)
	for i := range pts {
		pts[i] = rtree.PointEntry{
			P:  geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000},
			ID: int64(i),
		}
	}
	return pts
}

func TestBuildAndScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 42, 43, 500, 5000} {
		pts := randomEntries(rng, n)
		tr := buildQuad(t, pts, nil, 1)
		if tr.Size() != n {
			t.Fatalf("n=%d: size %d", n, tr.Size())
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := tr.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: scan %d", n, len(got))
		}
		seen := map[int64]bool{}
		for _, g := range got {
			if seen[g.ID] {
				t.Fatalf("duplicate id %d", g.ID)
			}
			seen[g.ID] = true
		}
	}
}

func TestDuplicatePointsOverflow(t *testing.T) {
	// 500 coincident points cannot be separated by subdivision; the
	// overflow chain must hold them all.
	pts := make([]rtree.PointEntry, 500)
	for i := range pts {
		pts[i] = rtree.PointEntry{P: geom.Point{X: 5, Y: 5}, ID: int64(i)}
	}
	tr := buildQuad(t, pts, nil, 1)
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("scan %d", len(got))
	}
}

func TestLeafPagesAndVisit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomEntries(rng, 2000)
	tr := buildQuad(t, pts, nil, 1)
	var visited int
	if err := tr.VisitLeaves(func(n *rtree.Node) error {
		if !n.Leaf {
			t.Fatal("non-leaf visited")
		}
		visited += n.NumPoints()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited != len(pts) {
		t.Fatalf("visited %d", visited)
	}
	pages, err := tr.LeafPages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("no leaf pages")
	}
}

// TestRCJOverQuadtree is the paper's generality claim (Section 3): the join
// algorithms run unchanged over a point quadtree and produce the identical
// result set.
func TestRCJOverQuadtree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := randomEntries(rng, 200)
	qs := randomEntries(rng, 180)

	want := core.BruteForcePairs(ps, qs, false)
	wantSet := map[string]bool{}
	for _, p := range want {
		wantSet[fmt.Sprintf("%d|%d", p.P.ID, p.Q.ID)] = true
	}

	pool := buffer.NewPool(-1)
	tp := buildQuad(t, ps, pool, 1)
	tq := buildQuad(t, qs, pool, 2)

	for _, alg := range []core.Algorithm{core.AlgBrute, core.AlgINJ, core.AlgBIJ, core.AlgOBJ} {
		t.Run(alg.String(), func(t *testing.T) {
			got, _, err := core.Join(tq, tp, core.Options{Algorithm: alg, Collect: true})
			if err != nil {
				t.Fatal(err)
			}
			gotSet := map[string]bool{}
			for _, p := range got {
				k := fmt.Sprintf("%d|%d", p.P.ID, p.Q.ID)
				if gotSet[k] {
					t.Errorf("duplicate pair %s", k)
				}
				gotSet[k] = true
			}
			if len(gotSet) != len(wantSet) {
				t.Errorf("got %d pairs, want %d", len(gotSet), len(wantSet))
			}
			for k := range wantSet {
				if !gotSet[k] {
					t.Errorf("missing pair %s", k)
				}
			}
			for k := range gotSet {
				if !wantSet[k] {
					t.Errorf("extra pair %s", k)
				}
			}
		})
	}
}

// TestMixedIndexJoin joins a quadtree-indexed dataset against an
// R*-tree-indexed one: the interface makes the combination legal.
func TestMixedIndexJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := randomEntries(rng, 150)
	qs := randomEntries(rng, 150)

	pool := buffer.NewPool(-1)
	quadP := buildQuad(t, ps, pool, 1)
	rtPager := storage.NewMemPager(storage.DefaultPageSize)
	rt, err := rtree.New(rtPager, pool, rtree.Config{Owner: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.BulkLoad(qs, 0); err != nil {
		t.Fatal(err)
	}

	got, _, err := core.Join(rt, quadP, core.Options{Algorithm: core.AlgOBJ, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	want := core.BruteForcePairs(ps, qs, false)
	if len(got) != len(want) {
		t.Fatalf("mixed join: %d pairs, want %d", len(got), len(want))
	}
}

func TestQuadtreeSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomEntries(rng, 120)
	tr := buildQuad(t, pts, nil, 1)
	got, _, err := core.Join(tr, tr, core.Options{Algorithm: core.AlgOBJ, SelfJoin: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	want := core.BruteForcePairs(pts, pts, true)
	if len(got) != len(want) {
		t.Fatalf("self join %d, want %d", len(got), len(want))
	}
}

func TestClusteredDeepTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Dense cluster forces deep subdivision.
	pts := make([]rtree.PointEntry, 3000)
	for i := range pts {
		pts[i] = rtree.PointEntry{
			P:  geom.Point{X: 500 + rng.NormFloat64()*2, Y: 500 + rng.NormFloat64()*2},
			ID: int64(i),
		}
	}
	tr := buildQuad(t, pts, nil, 1)
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Fatalf("dense cluster should force depth, got height %d", tr.Height())
	}
}

func TestQuadtreeAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr := buildQuad(t, randomEntries(rng, 300), nil, 1)
	if tr.NumPages() == 0 {
		t.Fatal("no pages")
	}
	if tr.Height() < 1 {
		t.Fatalf("height %d", tr.Height())
	}
	empty := buildQuad(t, nil, nil, 2)
	if empty.Root() != storage.InvalidPageID {
		t.Fatal("empty quadtree has a root")
	}
	if err := empty.Check(); err != nil {
		t.Fatal(err)
	}
}
