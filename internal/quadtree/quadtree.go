// Package quadtree implements a disk-paged bucket PR-quadtree over 2D
// points: the alternative hierarchical spatial index the paper names when
// noting its methodology "is directly applicable to other hierarchical
// spatial indexes (e.g., point quad-tree)" (Section 3).
//
// The tree recursively splits space into four quadrants until a cell's
// points fit one page-sized bucket. Nodes reuse the R-tree page layout
// (rtree.Node): internal entries carry the tight bounding rectangle of their
// quadrant's contents, so every pruning argument of the join algorithms —
// all phrased over MBRs — applies unchanged, and quadtree-indexed datasets
// plug straight into core.Join via the core.SpatialIndex interface.
package quadtree

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// maxDepth bounds subdivision so coincident points terminate; beyond it,
// points are packed into leaf chains regardless of bucket occupancy.
const maxDepth = 48

// Config controls quadtree construction.
type Config struct {
	// PageSize is the on-disk page size in bytes (default 1024).
	PageSize int
	// Owner tags this tree's pages in a shared buffer pool.
	Owner uint32
}

// Tree is a static disk-paged bucket PR-quadtree. Build it once with Build;
// it then serves the read-only traversal contract of core.SpatialIndex.
type Tree struct {
	pager   storage.Pager
	pool    *buffer.Pool
	cfg     Config
	root    storage.PageID
	size    int
	height  int
	bucket  int // leaf capacity
	fan     int // internal capacity (for overflow chains; quadrant fan is 4)
	pageBuf []byte
}

// Build constructs the quadtree over the given points.
func Build(pager storage.Pager, pool *buffer.Pool, cfg Config, points []rtree.PointEntry) (*Tree, error) {
	if cfg.PageSize <= 0 {
		cfg.PageSize = storage.DefaultPageSize
	}
	if pager.PageSize() != cfg.PageSize {
		return nil, fmt.Errorf("quadtree: pager page size %d != config %d", pager.PageSize(), cfg.PageSize)
	}
	t := &Tree{
		pager:   pager,
		pool:    pool,
		cfg:     cfg,
		root:    storage.InvalidPageID,
		bucket:  rtree.LeafCapacity(cfg.PageSize),
		fan:     rtree.InternalCapacity(cfg.PageSize),
		pageBuf: make([]byte, cfg.PageSize),
	}
	if t.bucket < 2 || t.fan < 4 {
		return nil, fmt.Errorf("quadtree: page size %d too small", cfg.PageSize)
	}
	if len(points) == 0 {
		return t, nil
	}
	world := geom.EmptyRect()
	for _, p := range points {
		world = world.ExtendPoint(p.P)
	}
	pts := make([]rtree.PointEntry, len(points))
	copy(pts, points)
	entry, height, err := t.build(pts, world, 0)
	if err != nil {
		return nil, err
	}
	t.root = entry.Child
	t.height = height
	t.size = len(points)
	return t, nil
}

// build recursively constructs the subtree for the points inside cell,
// returning the child entry describing it (with tight MBR) and its height.
func (t *Tree) build(pts []rtree.PointEntry, cell geom.Rect, depth int) (rtree.ChildEntry, int, error) {
	if len(pts) <= t.bucket {
		return t.writeLeaf(pts)
	}
	if depth >= maxDepth {
		// Coincident (or near-coincident) points: subdivision cannot make
		// progress; pack into a chain of leaves under internal nodes.
		return t.packOverflow(pts)
	}
	c := cell.Center()
	quadCells := [4]geom.Rect{
		{MinX: cell.MinX, MinY: cell.MinY, MaxX: c.X, MaxY: c.Y}, // SW
		{MinX: c.X, MinY: cell.MinY, MaxX: cell.MaxX, MaxY: c.Y}, // SE
		{MinX: cell.MinX, MinY: c.Y, MaxX: c.X, MaxY: cell.MaxY}, // NW
		{MinX: c.X, MinY: c.Y, MaxX: cell.MaxX, MaxY: cell.MaxY}, // NE
	}
	var quads [4][]rtree.PointEntry
	for _, p := range pts {
		i := 0
		if p.P.X >= c.X {
			i |= 1
		}
		if p.P.Y >= c.Y {
			i |= 2
		}
		quads[i] = append(quads[i], p)
	}
	var children []rtree.ChildEntry
	maxH := 0
	for i, q := range quads {
		if len(q) == 0 {
			continue
		}
		entry, h, err := t.build(q, quadCells[i], depth+1)
		if err != nil {
			return rtree.ChildEntry{}, 0, err
		}
		children = append(children, entry)
		if h > maxH {
			maxH = h
		}
	}
	if len(children) == 1 {
		// All points in one quadrant: skip the degenerate internal level.
		return children[0], maxH, nil
	}
	return t.writeInternal(children, maxH)
}

// packOverflow builds a minimal internal hierarchy over leaf chunks of
// unsplittable points.
func (t *Tree) packOverflow(pts []rtree.PointEntry) (rtree.ChildEntry, int, error) {
	var entries []rtree.ChildEntry
	for start := 0; start < len(pts); start += t.bucket {
		end := start + t.bucket
		if end > len(pts) {
			end = len(pts)
		}
		e, _, err := t.writeLeaf(pts[start:end])
		if err != nil {
			return rtree.ChildEntry{}, 0, err
		}
		entries = append(entries, e)
	}
	height := 1
	for len(entries) > 1 {
		var next []rtree.ChildEntry
		for start := 0; start < len(entries); start += t.fan {
			end := start + t.fan
			if end > len(entries) {
				end = len(entries)
			}
			e, _, err := t.writeInternal(entries[start:end], height)
			if err != nil {
				return rtree.ChildEntry{}, 0, err
			}
			next = append(next, e)
		}
		entries = next
		height++
	}
	return entries[0], height, nil
}

func (t *Tree) writeLeaf(pts []rtree.PointEntry) (rtree.ChildEntry, int, error) {
	n := rtree.NewLeaf(pts)
	id, err := t.allocNode(n)
	if err != nil {
		return rtree.ChildEntry{}, 0, err
	}
	return rtree.ChildEntry{MBR: n.MBR(), Child: id}, 1, nil
}

func (t *Tree) writeInternal(children []rtree.ChildEntry, childHeight int) (rtree.ChildEntry, int, error) {
	n := &rtree.Node{Children: append([]rtree.ChildEntry(nil), children...)}
	id, err := t.allocNode(n)
	if err != nil {
		return rtree.ChildEntry{}, 0, err
	}
	return rtree.ChildEntry{MBR: n.MBR(), Child: id}, childHeight + 1, nil
}

func (t *Tree) allocNode(n *rtree.Node) (storage.PageID, error) {
	id, err := t.pager.Allocate()
	if err != nil {
		return storage.InvalidPageID, err
	}
	if err := n.Encode(t.pageBuf); err != nil {
		return storage.InvalidPageID, err
	}
	if err := t.pager.WritePage(id, t.pageBuf); err != nil {
		return storage.InvalidPageID, err
	}
	t.pool.Put(buffer.Key{Owner: t.cfg.Owner, Page: id}, n)
	return id, nil
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels on the longest root-to-leaf path.
func (t *Tree) Height() int { return t.height }

// NumPages returns the number of allocated pages.
func (t *Tree) NumPages() int { return t.pager.NumPages() }

// Root returns the root page id (storage.InvalidPageID when empty).
func (t *Tree) Root() storage.PageID { return t.root }

// ReadNode fetches a node through the buffer pool.
func (t *Tree) ReadNode(id storage.PageID) (*rtree.Node, error) {
	v, err := t.pool.Get(buffer.Key{Owner: t.cfg.Owner, Page: id}, func() (any, error) {
		buf := make([]byte, t.cfg.PageSize)
		if err := t.pager.ReadPage(id, buf); err != nil {
			return nil, err
		}
		return rtree.DecodeNode(buf)
	})
	if err != nil {
		return nil, err
	}
	return v.(*rtree.Node), nil
}

// VisitLeaves applies fn to every leaf in depth-first order.
func (t *Tree) VisitLeaves(fn func(*rtree.Node) error) error {
	return t.visitRec(t.root, fn)
}

func (t *Tree) visitRec(id storage.PageID, fn func(*rtree.Node) error) error {
	if id == storage.InvalidPageID {
		return nil
	}
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if n.Leaf {
		return fn(n)
	}
	for _, e := range n.Children {
		if err := t.visitRec(e.Child, fn); err != nil {
			return err
		}
	}
	return nil
}

// LeafPages lists all leaf pages in depth-first order.
func (t *Tree) LeafPages() ([]storage.PageID, error) {
	var out []storage.PageID
	err := t.leafPagesRec(t.root, &out)
	return out, err
}

func (t *Tree) leafPagesRec(id storage.PageID, out *[]storage.PageID) error {
	if id == storage.InvalidPageID {
		return nil
	}
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if n.Leaf {
		*out = append(*out, id)
		return nil
	}
	for _, e := range n.Children {
		if err := t.leafPagesRec(e.Child, out); err != nil {
			return err
		}
	}
	return nil
}

// ScanAll returns every indexed point in leaf order.
func (t *Tree) ScanAll() ([]rtree.PointEntry, error) {
	out := make([]rtree.PointEntry, 0, t.size)
	err := t.VisitLeaves(func(n *rtree.Node) error {
		out = n.AppendPointsTo(out)
		return nil
	})
	return out, err
}

// Check verifies structural invariants: entry MBRs contain their subtrees,
// leaves respect the bucket capacity, and all points are reachable.
func (t *Tree) Check() error {
	if t.root == storage.InvalidPageID {
		if t.size != 0 {
			return fmt.Errorf("quadtree: empty root with size %d", t.size)
		}
		return nil
	}
	count, err := t.checkRec(t.root)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("quadtree: reachable points %d != size %d", count, t.size)
	}
	return nil
}

func (t *Tree) checkRec(id storage.PageID) (int, error) {
	n, err := t.ReadNode(id)
	if err != nil {
		return 0, err
	}
	if n.Leaf {
		if n.NumPoints() > t.bucket {
			return 0, fmt.Errorf("quadtree: leaf %d overfull: %d > %d", id, n.NumPoints(), t.bucket)
		}
		return n.NumPoints(), nil
	}
	if len(n.Children) == 0 {
		return 0, fmt.Errorf("quadtree: internal node %d has no children", id)
	}
	total := 0
	for _, e := range n.Children {
		child, err := t.ReadNode(e.Child)
		if err != nil {
			return 0, err
		}
		if got := child.MBR(); !e.MBR.ContainsRect(got) {
			return 0, fmt.Errorf("quadtree: node %d entry MBR does not contain child %d", id, e.Child)
		}
		c, err := t.checkRec(e.Child)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}
