// Quickstart: the smallest complete use of the rcj library.
//
// Two tiny pointsets are indexed and joined; every result pair comes with
// the center of its smallest enclosing circle — a fair middleman location
// equidistant from both points — and the circle's radius.
//
// This is exactly the configuration of Figure 1 in the paper: P = {p1, p2},
// Q = {q1, q2}, whose RCJ result is {<p1,q1>, <p2,q1>, <p2,q2>} — the pair
// <p1,q2> is excluded because its circle contains p2.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/rcj"
)

func main() {
	// The paper's Figure 1 layout (coordinates in [0,1], any scale works).
	p := []rcj.Point{
		{X: 0.30, Y: 0.75, ID: 1}, // p1
		{X: 0.40, Y: 0.40, ID: 2}, // p2
	}
	q := []rcj.Point{
		{X: 0.55, Y: 0.65, ID: 1}, // q1
		{X: 0.65, Y: 0.20, ID: 2}, // q2
	}

	ixP, err := rcj.BuildIndex(p, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixP.Close()
	ixQ, err := rcj.BuildIndex(q, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixQ.Close()

	pairs, stats, err := rcj.Join(ixQ, ixP, rcj.JoinOptions{SortByDiameter: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ring-constrained join: %d pairs (from %d candidates)\n", stats.Results, stats.Candidates)
	for _, pr := range pairs {
		fmt.Printf("  <p%d, q%d>  middleman at (%.3f, %.3f), radius %.3f\n",
			pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)
	}

	// The v2 request form: the same join as a constrained Query — here just
	// the single tightest pair, computed with top-k pushdown instead of
	// sorting the full result.
	eng := rcj.NewEngine(rcj.EngineConfig{})
	exP, err := eng.BuildIndex(p, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer exP.Close()
	exQ, err := eng.BuildIndex(q, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer exQ.Close()
	best, _, err := eng.RunCollect(context.Background(), exQ, exP, rcj.Query{TopK: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tightest pair (Query{TopK: 1}): <p%d, q%d>, ring diameter %.3f\n",
		best[0].P.ID, best[0].Q.ID, best[0].Diameter())
}
