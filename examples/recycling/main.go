// Recycling stations: the paper's headline decision-support scenario.
//
// A city wants recycling stations placed at fair locations between
// restaurants and residential complexes (both produce large volumes of
// recyclables). The ring-constrained join derives one candidate station per
// result pair: the circle center is equidistant from its restaurant and its
// residence, and — because the circle contains no other facility — everyone
// arriving at the station finds that restaurant/residence pair to be their
// nearest, so the station's catchment is unambiguous.
//
// The demo synthesizes a city (clustered restaurants, wider residential
// sprawl), runs the join, and prints summary statistics plus the ten most
// central stations.
//
// Run: go run ./examples/recycling
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/rcj"
)

func main() {
	const (
		numRestaurants = 4000
		numResidences  = 6000
		citySize       = 10000.0
	)
	rng := rand.New(rand.NewSource(2008))

	// Restaurants cluster in a few commercial districts.
	districts := make([][2]float64, 12)
	for i := range districts {
		districts[i] = [2]float64{rng.Float64() * citySize, rng.Float64() * citySize}
	}
	restaurants := make([]rcj.Point, numRestaurants)
	for i := range restaurants {
		d := districts[rng.Intn(len(districts))]
		restaurants[i] = rcj.Point{
			X:  clamp(d[0]+rng.NormFloat64()*400, citySize),
			Y:  clamp(d[1]+rng.NormFloat64()*400, citySize),
			ID: int64(i),
		}
	}
	// Residences sprawl more widely around the same districts, plus suburbs.
	residences := make([]rcj.Point, numResidences)
	for i := range residences {
		var x, y float64
		if rng.Float64() < 0.7 {
			d := districts[rng.Intn(len(districts))]
			x = clamp(d[0]+rng.NormFloat64()*1200, citySize)
			y = clamp(d[1]+rng.NormFloat64()*1200, citySize)
		} else {
			x, y = rng.Float64()*citySize, rng.Float64()*citySize
		}
		residences[i] = rcj.Point{X: x, Y: y, ID: int64(i)}
	}

	ixR, err := rcj.BuildIndex(restaurants, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixR.Close()
	ixH, err := rcj.BuildIndex(residences, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixH.Close()

	// Outer input: residences (Q); inner: restaurants (P).
	pairs, stats, err := rcj.Join(ixH, ixR, rcj.JoinOptions{SortByDiameter: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("city: %d restaurants, %d residential complexes\n", numRestaurants, numResidences)
	fmt.Printf("RCJ proposes %d station sites (candidates verified: %d, page faults: %d)\n\n",
		stats.Results, stats.Candidates, stats.PageFaults)

	// Note the parameter-free density adaptation the paper emphasizes:
	// stations in dense districts serve tight pairs, suburban stations
	// cover wide ones.
	var sumD float64
	for _, pr := range pairs {
		sumD += pr.Diameter()
	}
	fmt.Printf("station spacing adapts to density: ring diameters span %.1f m – %.1f m (mean %.1f m)\n\n",
		pairs[0].Diameter(), pairs[len(pairs)-1].Diameter(), sumD/float64(len(pairs)))

	fmt.Println("ten most central station sites (tightest restaurant/residence pairs):")
	for _, pr := range pairs[:10] {
		fmt.Printf("  station at (%7.1f, %7.1f): restaurant #%d and residence #%d, each %.1f m away\n",
			pr.Center.X, pr.Center.Y, pr.P.ID, pr.Q.ID, pr.Radius)
	}
}

func clamp(v, max float64) float64 {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}
