// Postboxes: the paper's self-join scenario.
//
// A postal service wants postboxes at locations convenient to public
// access. The self-RCJ of the building set yields, for every qualifying
// pair of buildings, the point halfway between them with no third building
// nearer — a natural, parameter-free distribution of postboxes that thins
// out in dense blocks and spreads in sparse ones.
//
// The demo also contrasts Euclidean and Manhattan (L1) placements: on a
// street grid, the L1 variant (the paper's future-work generalization) is
// the right notion of "equidistant".
//
// Run: go run ./examples/postboxes
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/rcj"
)

func main() {
	const numBuildings = 3000
	rng := rand.New(rand.NewSource(77))

	// Buildings on a loose Manhattan-style grid with jitter and gaps.
	buildings := make([]rcj.Point, 0, numBuildings)
	id := int64(0)
	for len(buildings) < numBuildings {
		bx := float64(rng.Intn(60))*160 + rng.NormFloat64()*12
		by := float64(rng.Intn(60))*160 + rng.NormFloat64()*12
		if rng.Float64() < 0.15 { // vacant lot
			continue
		}
		buildings = append(buildings, rcj.Point{X: bx, Y: by, ID: id})
		id++
	}

	ix, err := rcj.BuildIndex(buildings, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	pairs, stats, err := rcj.SelfJoin(ix, rcj.JoinOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-RCJ over %d buildings: %d postbox sites (Euclidean)\n", len(buildings), stats.Results)

	l1Pairs, l1Stats, err := rcj.SelfJoinL1(ix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-RCJ over %d buildings: %d postbox sites (Manhattan/L1)\n\n", len(buildings), l1Stats.Results)

	// How much do the two metrics disagree about which building pairs get a
	// box?
	l2Set := make(map[[2]int64]bool, len(pairs))
	for _, p := range pairs {
		l2Set[[2]int64{p.P.ID, p.Q.ID}] = true
	}
	common := 0
	for _, p := range l1Pairs {
		if l2Set[[2]int64{p.P.ID, p.Q.ID}] {
			common++
		}
	}
	fmt.Printf("pairs selected by both metrics: %d (%.1f%% of Euclidean)\n",
		common, 100*float64(common)/float64(len(pairs)))

	fmt.Println("\nfive sample sites (Euclidean):")
	for _, p := range pairs[:5] {
		fmt.Printf("  box at (%7.1f, %7.1f) between buildings #%d and #%d (walk: %.0f m each)\n",
			p.Center.X, p.Center.Y, p.P.ID, p.Q.ID, p.Radius)
	}
	fmt.Println("five sample sites (Manhattan):")
	for _, p := range l1Pairs[:5] {
		fmt.Printf("  box at (%7.1f, %7.1f) between buildings #%d and #%d (grid walk: %.0f m each)\n",
			p.Center.X, p.Center.Y, p.P.ID, p.Q.ID, p.Radius)
	}
}
