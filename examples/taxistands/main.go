// Taxi stands on a road network: the paper's future-work generalization of
// RCJ to shortest-path distance (Section 6).
//
// Cinemas and restaurants sit on the intersections of a street grid. The
// network ring-constrained join finds pairs whose *network ball* — centered
// at the midpoint of the shortest path, radius half the path length — holds
// no other venue; the center is the fair taxi-stand location measured in
// actual driving distance, not straight-line distance.
//
// The demo contrasts the network result with the Euclidean result on the
// same venues: street detours change both which pairs qualify and where the
// middleman lands.
//
// Run: go run ./examples/taxistands
package main

import (
	"fmt"
	"log"

	"repro/internal/roadnet"
	"repro/rcj"
)

func main() {
	const (
		rows, cols = 18, 18
		spacing    = 120.0
	)
	g := roadnet.GridNetwork(rows, cols, spacing, 2024)
	cinemas := roadnet.RandomPointsOnNodes(g, 40, 7)
	restaurants := roadnet.RandomPointsOnNodes(g, 40, 8)

	netPairs, stats, err := roadnet.Join(g, cinemas, restaurants)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("street grid: %d intersections, %d cinemas, %d restaurants\n",
		g.NumNodes(), len(cinemas), len(restaurants))
	fmt.Printf("network RCJ: %d taxi-stand sites (%d candidates verified, %d Dijkstra settlements)\n\n",
		stats.Results, stats.Candidates, stats.SettledNodes)

	// The same venues under Euclidean distance.
	toEuclid := func(pts []roadnet.PointRef) []rcj.Point {
		out := make([]rcj.Point, len(pts))
		for i, p := range pts {
			pos := g.Pos(p.Node)
			out[i] = rcj.Point{X: pos.X, Y: pos.Y, ID: p.ID}
		}
		return out
	}
	ixC, err := rcj.BuildIndex(toEuclid(cinemas), rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixC.Close()
	ixR, err := rcj.BuildIndex(toEuclid(restaurants), rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixR.Close()
	eucPairs, _, err := rcj.Join(ixR, ixC, rcj.JoinOptions{})
	if err != nil {
		log.Fatal(err)
	}

	netSet := map[[2]int64]bool{}
	for _, p := range netPairs {
		netSet[[2]int64{p.P.ID, p.Q.ID}] = true
	}
	common := 0
	for _, p := range eucPairs {
		if netSet[[2]int64{p.P.ID, p.Q.ID}] {
			common++
		}
	}
	fmt.Printf("Euclidean RCJ on the same venues: %d pairs\n", len(eucPairs))
	fmt.Printf("agreement between metrics: %d pairs (%.0f%% of network result)\n\n",
		common, 100*float64(common)/float64(len(netPairs)))

	fmt.Println("five taxi stands (network metric):")
	for _, p := range netPairs[:5] {
		loc := g.Embedding(p.Center)
		fmt.Printf("  stand near (%6.0f, %6.0f): cinema #%d and restaurant #%d, %.0f m drive each\n",
			loc.X, loc.Y, p.P.ID, p.Q.ID, p.Radius)
	}
}
