// School bus stops: weighted ranking of RCJ results.
//
// A bus company allocates stops at centers of RCJ pairs between residential
// estates, ranked in descending order of the number of children in the two
// estates of each pair (Section 1 of the paper). The weight lives outside
// the geometry: RCJ derives the candidate locations, the application ranks
// them.
//
// Run: go run ./examples/schoolbus
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/rcj"
)

func main() {
	const numEstates = 2000
	rng := rand.New(rand.NewSource(1234))

	// Estates in suburban clusters; each has a child count.
	centers := make([][2]float64, 8)
	for i := range centers {
		centers[i] = [2]float64{rng.Float64() * 10000, rng.Float64() * 10000}
	}
	estates := make([]rcj.Point, numEstates)
	children := make(map[int64]float64, numEstates)
	for i := range estates {
		c := centers[rng.Intn(len(centers))]
		estates[i] = rcj.Point{
			X:  c[0] + rng.NormFloat64()*900,
			Y:  c[1] + rng.NormFloat64()*900,
			ID: int64(i),
		}
		children[int64(i)] = float64(5 + rng.Intn(120))
	}

	ix, err := rcj.BuildIndex(estates, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	pairs, stats, err := rcj.SelfJoin(ix, rcj.JoinOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d estates -> %d candidate stop locations (self-RCJ, %d candidates verified)\n\n",
		numEstates, stats.Results, stats.Candidates)

	// Rank by the total number of children served (paper: "sorted in
	// descending order of the number of children in the residential estates
	// associated with the RCJ pair").
	rcj.RankPairsByWeight(pairs, func(p rcj.Point) float64 { return children[p.ID] })

	fmt.Println("top 10 stops by children served:")
	var covered float64
	for i, p := range pairs[:10] {
		kids := children[p.P.ID] + children[p.Q.ID]
		covered += kids
		fmt.Printf("  %2d. stop at (%7.1f, %7.1f) serves estates #%d+#%d: %3.0f children, walk %.0f m\n",
			i+1, p.Center.X, p.Center.Y, p.P.ID, p.Q.ID, kids, p.Radius)
	}
	fmt.Printf("\ntop-10 stops cover %.0f children\n", covered)
}
