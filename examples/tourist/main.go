// Tourist recommendation: browsing RCJ results by ring diameter.
//
// A tourist wants to visit both a cinema and a restaurant conveniently. The
// RCJ of the two sets, in ascending ring-diameter order, presents the
// tightest cinema/restaurant pairs first (Section 1 of the paper): standing
// at a pair's center, the tourist is equidistant from both venues and no
// competing venue is closer.
//
// The demo is a genuine constrained query, not a full join post-filtered:
// rcj.Query{TopK, Region} pushes "the 10 tightest pairs whose meeting point
// is within walking range of the hotel" into the index traversal. The top-k
// heap's current 10th-best diameter dynamically tightens the search bound
// (branch-and-bound), and the region window prunes subtrees that cannot
// produce a meeting point near the hotel — Stats.NodesPruned shows how much
// of the tree was never visited.
//
// Run: go run ./examples/tourist
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/rcj"
)

func main() {
	const n = 2500
	rng := rand.New(rand.NewSource(42))
	mk := func(seed int64) []rcj.Point {
		r := rand.New(rand.NewSource(seed))
		pts := make([]rcj.Point, n)
		for i := range pts {
			pts[i] = rcj.Point{X: r.Float64() * 10000, Y: r.Float64() * 10000, ID: int64(i)}
		}
		return pts
	}
	cinemas, restaurants := mk(rng.Int63()), mk(rng.Int63())

	eng := rcj.NewEngine(rcj.EngineConfig{})
	ixC, err := eng.BuildIndex(cinemas, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixC.Close()
	ixR, err := eng.BuildIndex(restaurants, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixR.Close()

	// The tourist stays here and will walk at most ~1.5 km to the meeting
	// point, so only pairs whose center falls in this window matter.
	hotel := rcj.Point{X: 5200, Y: 4800}
	const walk = 1500.0
	qry := rcj.Query{
		TopK: 10,
		Region: &rcj.Rect{
			MinX: hotel.X - walk, MinY: hotel.Y - walk,
			MaxX: hotel.X + walk, MaxY: hotel.Y + walk,
		},
	}
	var stats rcj.Stats
	qry.Stats = &stats

	// Stream the constrained join: the iterator yields the 10 ranked pairs
	// once the (pruned) traversal completes, tightest ring first.
	var recs []rcj.Pair
	for pr, err := range eng.Run(context.Background(), ixR, ixC, qry) {
		if err != nil {
			log.Fatal(err)
		}
		recs = append(recs, pr)
	}

	fmt.Printf("top %d cinema/restaurant pairs near the hotel (%.0f, %.0f):\n", len(recs), hotel.X, hotel.Y)
	for i, p := range recs {
		fmt.Printf("  %d. meet at (%6.0f, %6.0f): cinema #%d and restaurant #%d, each %.0f m away; ring ∅ %.0f m\n",
			i+1, p.Center.X, p.Center.Y, p.P.ID, p.Q.ID, p.Radius, p.Diameter())
	}
	fmt.Printf("\npushdown: %d node accesses, %d subtrees pruned, %d candidates verified\n",
		stats.NodeAccesses, stats.NodesPruned, stats.Candidates)
	fmt.Println("(a full join would visit every node, then sort and truncate)")
}
