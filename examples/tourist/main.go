// Tourist recommendation: browsing RCJ results by ring diameter.
//
// A tourist wants to visit both a cinema and a restaurant conveniently. The
// RCJ of the two sets, sorted ascending by ring diameter, presents the
// tightest cinema/restaurant pairs first (Section 1 of the paper): standing
// at a pair's center, the tourist is equidistant from both venues and no
// competing venue is closer.
//
// The demo streams the join (no materialized result set), keeps the top
// recommendations near the tourist's hotel, and prints an itinerary.
//
// Run: go run ./examples/tourist
package main

import (
	"container/heap"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/rcj"
)

// recHeap is a max-heap by badness (so the worst recommendation is popped
// first), keeping the best K seen while streaming.
type recHeap []scored

type scored struct {
	pair    rcj.Pair
	badness float64 // diameter + detour from the hotel
}

func (h recHeap) Len() int           { return len(h) }
func (h recHeap) Less(i, j int) bool { return h[i].badness > h[j].badness }
func (h recHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x any)        { *h = append(*h, x.(scored)) }
func (h *recHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

func main() {
	const n = 2500
	rng := rand.New(rand.NewSource(42))
	mk := func(seed int64) []rcj.Point {
		r := rand.New(rand.NewSource(seed))
		pts := make([]rcj.Point, n)
		for i := range pts {
			pts[i] = rcj.Point{X: r.Float64() * 10000, Y: r.Float64() * 10000, ID: int64(i)}
		}
		return pts
	}
	cinemas, restaurants := mk(rng.Int63()), mk(rng.Int63())

	ixC, err := rcj.BuildIndex(cinemas, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixC.Close()
	ixR, err := rcj.BuildIndex(restaurants, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixR.Close()

	hotel := rcj.Point{X: 5200, Y: 4800}
	const keep = 8

	// Stream pairs straight out of the join; no full result materialized.
	var (
		h    recHeap
		seen int64
	)
	_, stats, err := rcj.Join(ixR, ixC, rcj.JoinOptions{OnPair: func(p rcj.Pair) {
		seen++
		detour := math.Hypot(p.Center.X-hotel.X, p.Center.Y-hotel.Y)
		s := scored{pair: p, badness: p.Diameter() + detour}
		if len(h) < keep {
			heap.Push(&h, s)
			return
		}
		if s.badness < h[0].badness {
			h[0] = s
			heap.Fix(&h, 0)
		}
	}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streamed %d cinema/restaurant pairs (stats agree: %d), kept best %d near the hotel\n\n",
		seen, stats.Results, len(h))

	// Pop into ascending badness for display.
	ordered := make([]scored, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		ordered[i] = heap.Pop(&h).(scored)
	}
	fmt.Printf("itinerary options from hotel at (%.0f, %.0f):\n", hotel.X, hotel.Y)
	for i, s := range ordered {
		p := s.pair
		fmt.Printf("  %d. meet at (%6.0f, %6.0f): cinema #%d and restaurant #%d, each %.0f m away; ring ∅ %.0f m\n",
			i+1, p.Center.X, p.Center.Y, p.P.ID, p.Q.ID, p.Radius, p.Diameter())
	}
}
