// Package rcjnet is the public API of the road-network ring-constrained
// join — the generalization of RCJ to shortest-path distance that the paper
// proposes as future work (Section 6).
//
// Points live on the nodes of an undirected weighted road graph. A pair
// <p, q> qualifies when the network ball — centered at the midpoint of a
// shortest p–q path with radius half the path length — contains no other
// point of either dataset. The ball center is the fair middleman location
// in driving distance: equidistant from p and q along the roads.
//
//	g := rcjnet.NewGraph(numIntersections)
//	g.AddRoad(a, b, lengthMeters)
//	pairs, _, _ := rcjnet.Join(g, cinemas, restaurants)
package rcjnet

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math"

	"repro/internal/geom"
	"repro/internal/roadnet"
	"repro/internal/stream"
	"repro/internal/topk"
)

// NodeID identifies a road-graph node (an intersection).
type NodeID = roadnet.NodeID

// Point is a dataset point: a caller-assigned id and the node it sits on.
// IDs must be unique within one dataset.
type Point struct {
	ID   int64
	Node NodeID
}

// Graph is an undirected weighted road network.
type Graph struct {
	g *roadnet.Graph
}

// NewGraph returns a road network with n isolated intersections.
func NewGraph(n int) (*Graph, error) {
	g, err := roadnet.NewGraph(n, nil)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// NewEmbeddedGraph returns a road network whose intersections carry 2D
// coordinates (used only for Locate/visualization; join semantics are
// purely metric).
func NewEmbeddedGraph(coords [][2]float64) (*Graph, error) {
	pos := make([]geom.Point, len(coords))
	for i, c := range coords {
		pos[i] = geom.Point{X: c[0], Y: c[1]}
	}
	g, err := roadnet.NewGraph(len(coords), pos)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// AddRoad adds an undirected road of the given positive length between two
// intersections.
func (gr *Graph) AddRoad(a, b NodeID, length float64) error {
	return gr.g.AddEdge(a, b, length)
}

// NumNodes returns the number of intersections.
func (gr *Graph) NumNodes() int { return gr.g.NumNodes() }

// Distance returns the shortest-path distance between two intersections
// (ok is false when disconnected).
func (gr *Graph) Distance(a, b NodeID) (float64, bool) {
	d, _, ok := gr.g.ShortestPath(a, b, math.Inf(1))
	return d, ok
}

// Pair is one network-RCJ result. Stand describes the middleman location:
// it lies on the road from StandU toward StandV, StandOffset along it; for
// a location exactly at an intersection StandU == StandV. WalkEach is the
// network distance from the stand to each of the two points.
type Pair struct {
	P, Q        Point
	NetworkDist float64
	StandU      NodeID
	StandV      NodeID
	StandOffset float64
	WalkEach    float64
}

// Stats reports the work a network join performed.
type Stats struct {
	Candidates   int64
	Results      int64
	SettledNodes int64
}

// Join computes the network ring-constrained join of datasets P and Q over
// the road graph.
func Join(gr *Graph, P, Q []Point) ([]Pair, Stats, error) {
	return JoinContext(context.Background(), gr, P, Q)
}

// JoinContext is Join under a context: a cancelled ctx aborts the join
// between query points and returns ctx.Err().
func JoinContext(ctx context.Context, gr *Graph, P, Q []Point) ([]Pair, Stats, error) {
	pRefs, err := toRefs(gr, P)
	if err != nil {
		return nil, Stats{}, err
	}
	qRefs, err := toRefs(gr, Q)
	if err != nil {
		return nil, Stats{}, err
	}
	raw, st, err := roadnet.JoinContext(ctx, gr.g, pRefs, qRefs, nil)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]Pair, len(raw))
	for i, p := range raw {
		out[i] = fromRoadnetPair(p)
	}
	return out, Stats{Candidates: st.Candidates, Results: st.Results, SettledNodes: st.SettledNodes}, nil
}

// JoinSeq streams the network join as an iterator, mirroring
// rcj.Engine.Join: pairs are yielded as the join confirms them, cancelling
// ctx (or breaking out of the loop) aborts the join promptly, and no
// goroutine outlives the range loop.
func JoinSeq(ctx context.Context, gr *Graph, P, Q []Point) iter.Seq2[Pair, error] {
	return Run(ctx, gr, P, Q, Query{})
}

// Query constrains a network join, mirroring rcj.Query for the road-network
// metric. Predicates are pushed into the join's Dijkstra expansions: a
// distance bound stops each frontier early, and a TopK query tightens that
// bound as better pairs are found (branch-and-bound).
type Query struct {
	// MaxNetworkDist, when > 0, keeps only pairs within this shortest-path
	// distance of each other.
	MaxNetworkDist float64
	// TopK, when > 0, returns only the k closest pairs by network distance
	// (ties broken by ascending P.ID then Q.ID), in ascending order,
	// yielded together when the traversal completes.
	TopK int
	// Limit, when > 0, stops the join after this many pairs.
	Limit int
}

// Validate reports whether the query is well-formed.
func (q Query) Validate() error {
	switch {
	case q.MaxNetworkDist < 0:
		return fmt.Errorf("rcjnet: invalid query: negative max network distance %g", q.MaxNetworkDist)
	case q.TopK < 0:
		return fmt.Errorf("rcjnet: invalid query: negative top-k %d", q.TopK)
	case q.Limit < 0:
		return fmt.Errorf("rcjnet: invalid query: negative limit %d", q.Limit)
	}
	return nil
}

// Matches reports whether one pair satisfies the query's pair-level
// predicates (MaxNetworkDist) — the post-filter the pushdown is equivalent
// to.
func (q Query) Matches(p Pair) bool {
	return q.MaxNetworkDist <= 0 || p.NetworkDist <= q.MaxNetworkDist
}

// Run streams the constrained network join: the iterator yields exactly the
// unconstrained join post-filtered by the query (TopK in ascending distance
// order). Cancelling ctx or breaking out aborts the join promptly.
func Run(ctx context.Context, gr *Graph, P, Q []Point, qry Query) iter.Seq2[Pair, error] {
	if err := qry.Validate(); err != nil {
		return func(yield func(Pair, error) bool) { yield(Pair{}, err) }
	}
	return stream.Seq2(ctx, 64, func(runCtx context.Context, emit func(Pair)) error {
		pRefs, err := toRefs(gr, P)
		if err != nil {
			return err
		}
		qRefs, err := toRefs(gr, Q)
		if err != nil {
			return err
		}
		k := qry.TopK
		if k > 0 && qry.Limit > 0 && qry.Limit < k {
			k = qry.Limit
		}
		best := newNetTopK(k) // nil when k == 0
		bound := func() float64 {
			b := math.Inf(1)
			if qry.MaxNetworkDist > 0 {
				b = qry.MaxNetworkDist
			}
			if best != nil {
				if tb := netBound(best); tb < b {
					b = tb
				}
			}
			return b
		}
		// Limit without TopK: cancel the traversal once enough pairs are out.
		runCtx, cancel := context.WithCancel(runCtx)
		defer cancel()
		emitted := 0
		limited := false
		_, _, err = roadnet.JoinBounded(runCtx, gr.g, pRefs, qRefs, bound, func(p roadnet.Pair) {
			if qry.MaxNetworkDist > 0 && p.Dist > qry.MaxNetworkDist {
				return
			}
			if best != nil {
				best.Offer(p)
				return
			}
			if qry.Limit > 0 && emitted >= qry.Limit {
				return
			}
			emit(fromRoadnetPair(p))
			emitted++
			if qry.Limit > 0 && emitted == qry.Limit {
				limited = true
				cancel()
			}
		})
		if err != nil {
			if limited && errors.Is(err, context.Canceled) && ctx.Err() == nil {
				err = nil // a satisfied Limit is a clean completion
			}
			if err != nil {
				return err
			}
		}
		if best != nil {
			for _, p := range best.Sorted() {
				emit(fromRoadnetPair(p))
			}
		}
		return nil
	})
}

// RunCollect materializes Run.
func RunCollect(ctx context.Context, gr *Graph, P, Q []Point, qry Query) ([]Pair, error) {
	var out []Pair
	for p, err := range Run(ctx, gr, P, Q, qry) {
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// newNetTopK returns the bounded pair-heap of a network TopK query, ranked
// by (Dist, P.ID, Q.ID); the k-th distance (netBound) serves as the
// traversal's dynamic bound. The join is single-goroutine, so no locking.
func newNetTopK(k int) *topk.Heap[roadnet.Pair] {
	if k <= 0 {
		return nil
	}
	return topk.New(k, netPairBefore)
}

func netPairBefore(a, b roadnet.Pair) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	if a.P.ID != b.P.ID {
		return a.P.ID < b.P.ID
	}
	return a.Q.ID < b.Q.ID
}

// netBound returns the heap's current pruning bound: the k-th best network
// distance, +Inf until the heap fills.
func netBound(h *topk.Heap[roadnet.Pair]) float64 {
	if !h.Full() {
		return math.Inf(1)
	}
	return h.Worst().Dist
}

func fromRoadnetPair(p roadnet.Pair) Pair {
	return Pair{
		P:           Point{ID: p.P.ID, Node: p.P.Node},
		Q:           Point{ID: p.Q.ID, Node: p.Q.Node},
		NetworkDist: p.Dist,
		StandU:      p.Center.U,
		StandV:      p.Center.V,
		StandOffset: p.Center.OffU,
		WalkEach:    p.Radius,
	}
}

func toRefs(gr *Graph, pts []Point) ([]roadnet.PointRef, error) {
	seen := make(map[int64]struct{}, len(pts))
	out := make([]roadnet.PointRef, len(pts))
	for i, p := range pts {
		if int(p.Node) < 0 || int(p.Node) >= gr.g.NumNodes() {
			return nil, fmt.Errorf("rcjnet: point %d on unknown node %d", p.ID, p.Node)
		}
		if _, dup := seen[p.ID]; dup {
			return nil, fmt.Errorf("rcjnet: duplicate point ID %d", p.ID)
		}
		seen[p.ID] = struct{}{}
		out[i] = roadnet.PointRef{ID: p.ID, Node: p.Node}
	}
	return out, nil
}
