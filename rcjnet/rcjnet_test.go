package rcjnet

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"
)

// buildLine creates a 0–1–…–(n−1) path of unit roads.
func buildLine(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := NewGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddRoad(NodeID(i), NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestJoinLine(t *testing.T) {
	g := buildLine(t, 8)
	P := []Point{{ID: 0, Node: 0}, {ID: 1, Node: 4}}
	Q := []Point{{ID: 0, Node: 2}, {ID: 1, Node: 6}}
	pairs, stats, err := Join(g, P, Q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 || stats.Results != 3 {
		t.Fatalf("got %d pairs, want 3", len(pairs))
	}
	for _, p := range pairs {
		if math.Abs(p.WalkEach-p.NetworkDist/2) > 1e-12 {
			t.Fatalf("walk %g for distance %g", p.WalkEach, p.NetworkDist)
		}
		// The stand is genuinely equidistant: check against Distance.
		du, ok := g.Distance(p.P.Node, p.StandU)
		if !ok {
			t.Fatal("stand unreachable")
		}
		// Stand offset along U→V: distance from p to the stand equals
		// d(p, U) + offset or the route via V; just sanity-bound it.
		if du > p.NetworkDist {
			t.Fatalf("stand farther than the pair distance")
		}
	}
}

func TestValidation(t *testing.T) {
	g := buildLine(t, 4)
	if _, _, err := Join(g, []Point{{ID: 1, Node: 99}}, []Point{{ID: 1, Node: 0}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, _, err := Join(g, []Point{{ID: 1, Node: 0}, {ID: 1, Node: 2}}, []Point{{ID: 1, Node: 1}}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if err := g.AddRoad(0, 99, 1); err == nil {
		t.Fatal("bad road accepted")
	}
	if err := g.AddRoad(0, 1, -5); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestDistance(t *testing.T) {
	g := buildLine(t, 5)
	d, ok := g.Distance(0, 4)
	if !ok || d != 4 {
		t.Fatalf("distance %g ok=%v", d, ok)
	}
	// Disconnected pair.
	g2, _ := NewGraph(3)
	g2.AddRoad(0, 1, 1)
	if _, ok := g2.Distance(0, 2); ok {
		t.Fatal("disconnected reported as reachable")
	}
}

func TestEmbeddedGraph(t *testing.T) {
	g, err := NewEmbeddedGraph([][2]float64{{0, 0}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddRoad(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	d, ok := g.Distance(0, 1)
	if !ok || d != 5 {
		t.Fatalf("distance %g", d)
	}
}

func TestJoinSeqMatchesJoin(t *testing.T) {
	g := buildLine(t, 16)
	var P, Q []Point
	for i := 0; i < 8; i++ {
		P = append(P, Point{ID: int64(i), Node: NodeID(2 * i)})
		Q = append(Q, Point{ID: int64(i), Node: NodeID(2*i + 1)})
	}
	want, _, err := Join(g, P, Q)
	if err != nil {
		t.Fatal(err)
	}
	var got []Pair
	for pr, err := range JoinSeq(context.Background(), g, P, Q) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pr)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].P.ID != got[i].P.ID || want[i].Q.ID != got[i].Q.ID {
			t.Fatalf("pair %d: <%d,%d> vs <%d,%d>", i, got[i].P.ID, got[i].Q.ID, want[i].P.ID, want[i].Q.ID)
		}
	}
}

func TestJoinSeqCancelledAndEarlyBreak(t *testing.T) {
	g := buildLine(t, 16)
	var P, Q []Point
	for i := 0; i < 8; i++ {
		P = append(P, Point{ID: int64(i), Node: NodeID(2 * i)})
		Q = append(Q, Point{ID: int64(i), Node: NodeID(2*i + 1)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sawErr error
	for _, err := range JoinSeq(ctx, g, P, Q) {
		if err != nil {
			sawErr = err
			break
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", sawErr)
	}
	base := runtime.NumGoroutine()
	n := 0
	for _, err := range JoinSeq(context.Background(), g, P, Q) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 1 {
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Fatalf("goroutines leaked after early break: %d > %d", g, base)
	}
}

// randomGraph builds a connected random graph with pts points scattered on
// its nodes, deterministic under seed.
func randomGraph(t *testing.T, n int, seed int64) (*Graph, []Point, []Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := NewGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		// Spanning tree keeps it connected; extra chords add shortcuts.
		if err := g.AddRoad(NodeID(rng.Intn(i)), NodeID(i), 1+rng.Float64()*9); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/2; i++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a != b {
			g.AddRoad(a, b, 1+rng.Float64()*19) // duplicate edges are fine
		}
	}
	var P, Q []Point
	for i := 0; i < n/3; i++ {
		P = append(P, Point{ID: int64(i), Node: NodeID(rng.Intn(n))})
		Q = append(Q, Point{ID: int64(i), Node: NodeID(rng.Intn(n))})
	}
	return g, P, Q
}

// TestRunConstrainedEquivalence checks the network pushdown property: Run
// with any predicate combination equals post-filtering the unconstrained
// join (TopK = the k closest by network distance, ties by IDs).
func TestRunConstrainedEquivalence(t *testing.T) {
	g, P, Q := randomGraph(t, 120, 3)
	full, _, err := Join(g, P, Q)
	if err != nil {
		t.Fatal(err)
	}
	sortNet := func(pairs []Pair) {
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].NetworkDist != pairs[j].NetworkDist {
				return pairs[i].NetworkDist < pairs[j].NetworkDist
			}
			if pairs[i].P.ID != pairs[j].P.ID {
				return pairs[i].P.ID < pairs[j].P.ID
			}
			return pairs[i].Q.ID < pairs[j].Q.ID
		})
	}
	for ci, qry := range []Query{
		{},
		{MaxNetworkDist: 5},
		{MaxNetworkDist: 15},
		{TopK: 1},
		{TopK: 4},
		{TopK: len(full) + 5},
		{TopK: 3, MaxNetworkDist: 20},
	} {
		got, err := RunCollect(context.Background(), g, P, Q, qry)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		var want []Pair
		for _, p := range full {
			if qry.Matches(p) {
				want = append(want, p)
			}
		}
		if qry.TopK > 0 {
			sortNet(want)
			if len(want) > qry.TopK {
				want = want[:qry.TopK]
			}
		} else {
			sortNet(got)
			sortNet(want)
		}
		if len(got) != len(want) {
			t.Fatalf("case %d: %d pairs, want %d", ci, len(got), len(want))
		}
		for i := range want {
			if got[i].P.ID != want[i].P.ID || got[i].Q.ID != want[i].Q.ID {
				t.Errorf("case %d pair %d: <%d,%d> vs want <%d,%d>", ci, i, got[i].P.ID, got[i].Q.ID, want[i].P.ID, want[i].Q.ID)
			}
		}
	}

	// Limit: a clean subset of bounded size.
	got, err := RunCollect(context.Background(), g, P, Q, Query{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) >= 3 && len(got) != 3 {
		t.Fatalf("limit=3 returned %d pairs", len(got))
	}
	keys := make(map[[2]int64]bool, len(full))
	for _, p := range full {
		keys[[2]int64{p.P.ID, p.Q.ID}] = true
	}
	for _, p := range got {
		if !keys[[2]int64{p.P.ID, p.Q.ID}] {
			t.Errorf("limit pair <%d,%d> not in unconstrained result", p.P.ID, p.Q.ID)
		}
	}

	// Malformed queries surface as the stream's first element.
	for _, bad := range []Query{{TopK: -1}, {Limit: -1}, {MaxNetworkDist: -2}} {
		if _, err := RunCollect(context.Background(), g, P, Q, bad); err == nil {
			t.Errorf("query %+v: no validation error", bad)
		}
	}
}
