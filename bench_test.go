// Package bench holds the repository-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (driving
// internal/exp at a reduced scale so `go test -bench=.` completes quickly),
// plus ablation benchmarks for the design choices called out in DESIGN.md.
//
// To regenerate an experiment at paper scale, use cmd/rcjbench with
// -scale 1; these benchmarks default to benchScale of the paper's
// cardinalities.
package bench

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/roadnet"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/workload"
)

// benchScale is the dataset scale the benchmarks run at (fraction of the
// paper's cardinalities).
const benchScale = 0.02

func benchCfg() exp.Config {
	return exp.Config{Scale: benchScale}
}

// BenchmarkTable4Candidates regenerates Table 4: candidate-pair counts of
// BRUTE/INJ/BIJ/OBJ on the real-like SP and LP combinations.
func BenchmarkTable4Candidates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[0].OBJ), "SP-OBJ-candidates")
			b.ReportMetric(float64(rows[0].RCJResults), "SP-results")
		}
	}
}

// BenchmarkFig10EpsilonResemblance regenerates Figure 10: precision/recall
// of the ε-distance join vs RCJ.
func BenchmarkFig10EpsilonResemblance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig10(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11KCPResemblance regenerates Figure 11: precision/recall of
// the k-closest-pairs join vs RCJ.
func BenchmarkFig11KCPResemblance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig11(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12KNNResemblance regenerates Figure 12: precision/recall of
// the kNN join vs RCJ.
func BenchmarkFig12KNNResemblance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig12(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13JoinCombos regenerates Figure 13: cost per join combination
// (SP, LP, SP', LP') per algorithm.
func BenchmarkFig13JoinCombos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig13(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14VerificationCost regenerates Figure 14: cost with vs
// without the verification step on UI data.
func BenchmarkFig14VerificationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig14(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15BufferSize regenerates Figure 15: the buffer-size sweep.
func BenchmarkFig15BufferSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig15(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16DataSize regenerates Figure 16: the data-size scalability
// sweep (time and result cardinality).
func BenchmarkFig16DataSize(b *testing.B) {
	cfg := benchCfg()
	cfg.Scale = benchScale / 2 // the sweep itself reaches 800K × scale
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig16(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17CardinalityRatio regenerates Figure 17: the cardinality
// ratio sweep at fixed total size.
func BenchmarkFig17CardinalityRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig17(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18Clusters regenerates Figure 18: the Gaussian cluster-count
// sweep.
func BenchmarkFig18Clusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig18(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// benchEnv builds a UI join environment of n points per side.
func benchEnv(b *testing.B, n int) *exp.Env {
	b.Helper()
	env, err := exp.NewEnv(workload.Uniform(n, 1), workload.Uniform(n, 2), 0.01, 0)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkAblationSearchOrder compares depth-first TQ leaf order (Section
// 3.4) against a random leaf order: same result set, worse access locality.
func BenchmarkAblationSearchOrder(b *testing.B) {
	env := benchEnv(b, 4000)
	for _, mode := range []struct {
		name   string
		random bool
	}{{"depth-first", false}, {"random", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var faults int64
			for i := 0; i < b.N; i++ {
				res, err := env.Run(core.Options{Algorithm: core.AlgOBJ, RandomLeafOrder: mode.random, Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				faults = res.Cost.Faults
			}
			b.ReportMetric(float64(faults), "page-faults")
		})
	}
}

// BenchmarkAblationSymmetricPruning isolates Lemma 5: BIJ vs OBJ on the
// same environment, reporting candidate counts.
func BenchmarkAblationSymmetricPruning(b *testing.B) {
	env := benchEnv(b, 4000)
	for _, alg := range []core.Algorithm{core.AlgBIJ, core.AlgOBJ} {
		b.Run(alg.String(), func(b *testing.B) {
			var cands int64
			for i := 0; i < b.N; i++ {
				res, err := env.Run(core.Options{Algorithm: alg})
				if err != nil {
					b.Fatal(err)
				}
				cands = res.Stats.Candidates
			}
			b.ReportMetric(float64(cands), "candidates")
		})
	}
}

// BenchmarkAblationFaceRule toggles the face-inside-circle verification
// shortcut (Algorithm 3, case 4), reporting verification node visits.
func BenchmarkAblationFaceRule(b *testing.B) {
	env := benchEnv(b, 4000)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"face-rule-on", false}, {"face-rule-off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var visited int64
			for i := 0; i < b.N; i++ {
				res, err := env.Run(core.Options{Algorithm: core.AlgOBJ, DisableFaceRule: mode.disable})
				if err != nil {
					b.Fatal(err)
				}
				visited = res.Stats.VerifiedNodes
			}
			b.ReportMetric(float64(visited), "verify-node-visits")
		})
	}
}

// BenchmarkAblationBulkLoad compares STR bulk loading against one-by-one R*
// insertion for index construction.
func BenchmarkAblationBulkLoad(b *testing.B) {
	pts := workload.Uniform(20000, 3)
	build := func(bulk bool) {
		pager := storage.NewMemPager(storage.DefaultPageSize)
		tree, err := rtree.New(pager, buffer.NewPool(-1), rtree.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if bulk {
			if err := tree.BulkLoad(pts, 0); err != nil {
				b.Fatal(err)
			}
			return
		}
		for _, p := range pts {
			if err := tree.Insert(p.P, p.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("str-bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			build(true)
		}
	})
	b.Run("rstar-insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			build(false)
		}
	})
}

// BenchmarkAblationNoBuffer contrasts the paper's 1% buffer against no
// buffering at all (every node access faults).
func BenchmarkAblationNoBuffer(b *testing.B) {
	env := benchEnv(b, 4000)
	for _, mode := range []struct {
		name string
		frac float64
	}{{"buffer-1pct", 0.01}, {"no-buffer", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			if mode.frac == 0 {
				env.Pool.Resize(0)
			} else {
				env.SetBufferFrac(mode.frac)
			}
			var faults int64
			for i := 0; i < b.N; i++ {
				res, err := env.Run(core.Options{Algorithm: core.AlgOBJ})
				if err != nil {
					b.Fatal(err)
				}
				faults = res.Cost.Faults
			}
			b.ReportMetric(float64(faults), "page-faults")
		})
	}
}

// BenchmarkAlgorithms measures the three join algorithms head-to-head on one
// environment — the per-join microbenchmark behind every figure.
func BenchmarkAlgorithms(b *testing.B) {
	env := benchEnv(b, 4000)
	for _, alg := range []core.Algorithm{core.AlgINJ, core.AlgBIJ, core.AlgOBJ} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.Run(core.Options{Algorithm: alg}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinL1 measures the Manhattan-metric extension.
func BenchmarkJoinL1(b *testing.B) {
	env := benchEnv(b, 2000)
	for i := 0; i < b.N; i++ {
		env.Reset()
		if _, _, err := core.JoinL1(env.TQ, env.TP, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelJoin measures worker-pool scaling of the join. Speedup
// requires a multicore machine; on a single-CPU host the variants tie (the
// parallel path is validated for correctness, not throughput, there).
func BenchmarkParallelJoin(b *testing.B) {
	env := benchEnv(b, 8000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{Algorithm: core.AlgOBJ}
				if workers > 1 {
					opts.Parallelism = workers
				}
				if _, err := env.Run(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonitorInsert measures incremental maintenance throughput: one
// point insertion into a live 10K×10K join.
func BenchmarkMonitorInsert(b *testing.B) {
	pool := buffer.NewPool(-1)
	build := func(pts []rtree.PointEntry, owner uint32) *rtree.Tree {
		tr, err := rtree.New(storage.NewMemPager(storage.DefaultPageSize), pool, rtree.Config{Owner: owner})
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.BulkLoad(pts, 0); err != nil {
			b.Fatal(err)
		}
		return tr
	}
	tq := build(workload.Uniform(10000, 1), 1)
	tp := build(workload.Uniform(10000, 2), 2)
	m, err := core.NewMonitor(tq, tp)
	if err != nil {
		b.Fatal(err)
	}
	fresh := workload.Uniform(200000, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := fresh[i%len(fresh)]
		if _, _, err := m.AddP(pt.P, int64(1_000_000+i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkJoin measures the road-network RCJ (future work §6) on a
// street grid.
func BenchmarkNetworkJoin(b *testing.B) {
	g := roadnet.GridNetwork(20, 20, 100, 1)
	P := roadnet.RandomPointsOnNodes(g, 80, 2)
	Q := roadnet.RandomPointsOnNodes(g, 80, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := roadnet.Join(g, P, Q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelfJoin measures the self-join (postboxes) path.
func BenchmarkSelfJoin(b *testing.B) {
	env, err := exp.NewSelfEnv(workload.Uniform(4000, 7), 0.01, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := env.Run(core.Options{Algorithm: core.AlgOBJ, SelfJoin: true}); err != nil {
			b.Fatal(err)
		}
	}
}
