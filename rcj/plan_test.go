package rcj

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// plannerCases enumerates predicate combinations over the 1000² universe of
// testPoints, including the window shapes that steer the planner toward
// each of its rules.
func plannerCases() []Query {
	region := &Rect{MinX: 150, MinY: 150, MaxX: 800, MaxY: 800}
	tight := &Rect{MinX: 450, MinY: 450, MaxX: 550, MaxY: 550}
	return []Query{
		{},
		{MaxDiameter: 60},
		{MinDistance: 30},
		{Region: region},
		{Region: tight},
		{TopK: 1},
		{TopK: 12},
		{MaxDiameter: 80, Region: region},
		{TopK: 8, Region: tight},
		{TopK: 15, MaxDiameter: 70, MinDistance: 15},
		{MaxDiameter: 60, MinDistance: 25, Region: region},
		{TopK: 9, Limit: 4},
	}
}

// TestResolveFixedEcho pins the fixed path: a query that names its algorithm
// (or sets ForceAlgorithm) resolves to itself verbatim under rule "fixed",
// and resolution is idempotent — a resolved query takes the fixed path on
// every later Resolve.
func TestResolveFixedEcho(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(17))
	ix, err := eng.BuildIndex(testPoints(rng, 100, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	resolved, dec := Query{Algorithm: BIJ, Parallelism: 3}.Resolve(ix, ix, true)
	if !resolved.ForceAlgorithm || resolved.Algorithm != BIJ {
		t.Errorf("resolved = {alg:%v force:%v}, want forced BIJ", resolved.Algorithm, resolved.ForceAlgorithm)
	}
	if dec.Rule != "fixed" || dec.Algorithm != BIJ || dec.Parallelism != 3 {
		t.Errorf("decision = %v, want fixed BIJ par=3", dec)
	}

	// A forced query with no explicit Parallelism runs sequentially; the
	// decision must report that effective value, not echo the zero.
	if _, d := (Query{Algorithm: OBJ}).Resolve(ix, ix, true); d.Parallelism != 1 {
		t.Errorf("forced OBJ with Parallelism 0: decision reports par=%d, want 1", d.Parallelism)
	}

	// INJ is the Algorithm zero value, so forcing it needs ForceAlgorithm.
	if _, d := (Query{Algorithm: INJ, ForceAlgorithm: true}).Resolve(ix, ix, true); d.Rule != "fixed" || d.Algorithm != INJ {
		t.Errorf("forced INJ: decision = %v, want fixed INJ", d)
	}

	// Idempotence: resolving a resolved query changes nothing.
	again, dec2 := resolved.Resolve(ix, ix, true)
	if again.Algorithm != resolved.Algorithm || !again.ForceAlgorithm || dec2.Rule != "fixed" || dec2.Algorithm != dec.Algorithm {
		t.Errorf("re-resolve: query {alg:%v force:%v} decision %v, want unchanged fixed %v",
			again.Algorithm, again.ForceAlgorithm, dec2, dec.Algorithm)
	}
}

// TestResolveAutoPicksBySize pins the planner's headline rules end to end
// through Resolve: a tiny input plans brute, a large one plans OBJ, a sharp
// Region window shrinks the effective outer set into INJ territory — and the
// resolved query is pinned (later Resolves take the fixed path).
func TestResolveAutoPicksBySize(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(23))
	tiny, err := eng.BuildIndex(testPoints(rng, 40, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tiny.Close()
	large, err := eng.BuildIndex(testPoints(rng, 800, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer large.Close()

	q1, dec1 := Query{}.Resolve(tiny, tiny, true)
	if dec1.Algorithm != Brute || dec1.Rule != "tiny-brute" {
		t.Errorf("40×40 self-join planned %v, want tiny-brute", dec1)
	}
	if !q1.ForceAlgorithm || q1.Algorithm != Brute {
		t.Errorf("resolved query = {alg:%v force:%v}, want pinned Brute", q1.Algorithm, q1.ForceAlgorithm)
	}

	q2, dec2 := Query{}.Resolve(large, large, true)
	if dec2.Algorithm != OBJ || dec2.Rule != "default-obj" {
		t.Errorf("800×800 self-join planned %v, want default-obj", dec2)
	}
	if _, dec3 := q2.Resolve(large, large, true); dec3.Rule != "fixed" || dec3.Algorithm != OBJ {
		t.Errorf("re-resolve of planned query: %v, want fixed OBJ", dec3)
	}

	// A 100-unit window over the 1000-unit MBR leaves a few dozen effective
	// outer points: per-point filtering beats bulk setup.
	_, dec4 := Query{Region: &Rect{MinX: 450, MinY: 450, MaxX: 550, MaxY: 550}}.Resolve(large, large, true)
	if dec4.Algorithm != INJ || dec4.Rule != "small-outer-inj" {
		t.Errorf("tight-window plan = %v, want small-outer-inj", dec4)
	}
}

// TestRunFillsPlanOut checks the reporting contract: Query.PlanOut receives
// the resolved decision on both the materializing and the streaming entry
// points, and on the streaming one it is filled before the iterator is
// consumed.
func TestRunFillsPlanOut(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(31))
	ixP, err := eng.BuildIndex(testPoints(rng, 300, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixP.Close()
	ixQ, err := eng.BuildIndex(testPoints(rng, 300, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixQ.Close()
	ctx := context.Background()

	var dec PlanDecision
	if _, _, err := eng.RunCollect(ctx, ixQ, ixP, Query{TopK: 5, PlanOut: &dec}); err != nil {
		t.Fatal(err)
	}
	if dec.Rule == "" || dec.Parallelism < 1 {
		t.Errorf("RunCollect left PlanOut unfilled: %v", dec)
	}

	var decStream PlanDecision
	seq := eng.Run(ctx, ixQ, ixP, Query{TopK: 5, PlanOut: &decStream})
	if decStream.Rule == "" {
		t.Error("Run returned an iterator without filling PlanOut")
	}
	if _, err := Collect(seq); err != nil {
		t.Fatal(err)
	}
	if decStream.Algorithm != dec.Algorithm || decStream.Rule != dec.Rule {
		t.Errorf("streaming plan %v != collecting plan %v for the same query", decStream, dec)
	}
}

// TestPlannerSeesLiveMutations is the epoch-awareness regression test: on a
// mutable index the planner must read the live point count (LiveStats), not
// the sealed base superblock, whose count goes stale the moment a batch
// lands. A born-small index plans brute; after a 500-point insert batch the
// same unresolved query must plan OBJ, and the decision's pinned epoch must
// advance with the mutation.
func TestPlannerSeesLiveMutations(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(99))
	ix, err := eng.NewMutableIndex(testPoints(rng, 30, 0), MutableConfig{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	_, dec0 := Query{}.Resolve(ix, ix, true)
	if dec0.Algorithm != Brute {
		t.Fatalf("30-point mutable self-join planned %v, want Brute", dec0)
	}

	if _, err := ix.Insert(testPoints(rng, 500, 1000)...); err != nil {
		t.Fatal(err)
	}
	_, dec1 := Query{}.Resolve(ix, ix, true)
	if dec1.Algorithm != OBJ {
		t.Errorf("530-point mutable self-join planned %v — the planner read a stale (sealed) count, want OBJ", dec1)
	}
	if dec1.Epochs[0] <= dec0.Epochs[0] {
		t.Errorf("decision epoch %d after mutation, want > %d", dec1.Epochs[0], dec0.Epochs[0])
	}

	// Deleting back down must also be seen: the count shrinks through
	// tombstones, not just the delta growing.
	var ids []int64
	for i := int64(1000); i < 1500; i++ {
		ids = append(ids, i)
	}
	if _, err := ix.Delete(ids...); err != nil {
		t.Fatal(err)
	}
	if _, dec2 := (Query{}).Resolve(ix, ix, true); dec2.Algorithm != Brute {
		t.Errorf("after deleting back to 30 points planned %v, want Brute again", dec2.Algorithm)
	} else if dec2.Epochs[0] <= dec1.Epochs[0] {
		t.Errorf("decision epoch %d after delete, want > %d", dec2.Epochs[0], dec1.Epochs[0])
	}
}

// TestPlannerEquivalenceProperty is the randomized planner-equivalence
// property: for every predicate combination, self- and two-set joins, over
// immutable and mutable (delta + tombstone) indexes, the planner-chosen
// execution returns exactly the same pair set as every forced algorithm.
// The planner may be wrong about cost, never about answers. Run under -race
// in CI as a named gate.
func TestPlannerEquivalenceProperty(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(321))
	ctx := context.Background()

	build := func(n int, idBase int64, mutable bool) *Index {
		t.Helper()
		pts := testPoints(rng, n, idBase)
		if !mutable {
			ix, err := eng.BuildIndex(pts, IndexConfig{})
			if err != nil {
				t.Fatal(err)
			}
			return ix
		}
		// Born with half the points, grown to n, with a deleted stripe
		// re-inserted — so the planner and the executor both see a live
		// index with a real delta and tombstones.
		ix, err := eng.NewMutableIndex(pts[:n/2], MutableConfig{CompactEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Insert(pts[n/2:]...); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Delete(pts[0].ID, pts[1].ID); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Insert(pts[0], pts[1]); err != nil {
			t.Fatal(err)
		}
		return ix
	}

	for _, mutable := range []bool{false, true} {
		ixP := build(250, 0, mutable)
		ixQ := build(250, 0, mutable)
		for _, self := range []bool{false, true} {
			for ci, base := range plannerCases() {
				// The planner's choice, everything left to it.
				var dec PlanDecision
				auto := base
				auto.PlanOut = &dec
				var got []Pair
				var err error
				if self {
					got, _, err = eng.RunSelfCollect(ctx, ixP, auto)
				} else {
					got, _, err = eng.RunCollect(ctx, ixQ, ixP, auto)
				}
				if err != nil {
					t.Fatalf("mutable=%v self=%v case=%d auto: %v", mutable, self, ci, err)
				}
				for _, alg := range []Algorithm{INJ, BIJ, OBJ, Brute} {
					forced := base
					forced.Algorithm = alg
					forced.ForceAlgorithm = true
					forced.Parallelism = 1
					var want []Pair
					if self {
						want, _, err = eng.RunSelfCollect(ctx, ixP, forced)
					} else {
						want, _, err = eng.RunCollect(ctx, ixQ, ixP, forced)
					}
					if err != nil {
						t.Fatalf("mutable=%v self=%v case=%d %v: %v", mutable, self, ci, alg, err)
					}
					samePairs(t, labelFor(mutable, self, ci, alg, dec), sortedPairs(want), sortedPairs(got))
				}
			}
		}
		ixP.Close()
		ixQ.Close()
	}
}

func labelFor(mutable, self bool, ci int, alg Algorithm, dec PlanDecision) string {
	m := "immutable"
	if mutable {
		m = "mutable"
	}
	s := "two-set"
	if self {
		s = "self"
	}
	return fmt.Sprintf("%s %s case=%d vs %v (planned %s)", m, s, ci, alg, dec.Rule)
}

// TestWeightedTopKEquivalence checks the school-bus pushdown: a TopK query
// with a Weight function returns the head of RankPairsByWeight over the
// unconstrained join — under the planner and under every forced algorithm.
// Sets are compared by their combined-weight multisets so weight ties never
// flake the test.
func TestWeightedTopKEquivalence(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(77))
	ixP, err := eng.BuildIndex(testPoints(rng, 300, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixP.Close()
	ixQ, err := eng.BuildIndex(testPoints(rng, 300, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixQ.Close()
	ctx := context.Background()

	weight := func(p Point) float64 { return float64((p.ID*7919)%997) + math.Sin(float64(p.ID)) }
	combined := func(pr Pair) float64 { return weight(pr.P) + weight(pr.Q) }
	weightsOf := func(pairs []Pair) []float64 {
		ws := make([]float64, len(pairs))
		for i, pr := range pairs {
			ws[i] = combined(pr)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
		return ws
	}

	for _, self := range []bool{false, true} {
		var full []Pair
		var err error
		if self {
			full, _, err = eng.RunSelfCollect(ctx, ixP, Query{})
		} else {
			full, _, err = eng.RunCollect(ctx, ixQ, ixP, Query{})
		}
		if err != nil {
			t.Fatal(err)
		}
		ranked := append([]Pair(nil), full...)
		RankPairsByWeight(ranked, weight)

		for _, k := range []int{1, 7, 40, len(full) + 5} {
			head := ranked
			if k < len(head) {
				head = head[:k]
			}
			want := weightsOf(head)
			algs := []struct {
				name   string
				forced bool
				alg    Algorithm
			}{
				{"auto", false, 0},
				{"inj", true, INJ},
				{"obj", true, OBJ},
				{"brute", true, Brute},
			}
			for _, a := range algs {
				qry := Query{TopK: k, Weight: weight, Algorithm: a.alg, ForceAlgorithm: a.forced}
				var got []Pair
				if self {
					got, _, err = eng.RunSelfCollect(ctx, ixP, qry)
				} else {
					got, _, err = eng.RunCollect(ctx, ixQ, ixP, qry)
				}
				if err != nil {
					t.Fatalf("self=%v k=%d %s: %v", self, k, a.name, err)
				}
				gw := weightsOf(got)
				if len(gw) != len(want) {
					t.Fatalf("self=%v k=%d %s: %d pairs, want %d", self, k, a.name, len(gw), len(want))
				}
				for i := range want {
					if math.Abs(gw[i]-want[i]) > 1e-9 {
						t.Fatalf("self=%v k=%d %s: rank %d combined weight %v, want %v", self, k, a.name, i, gw[i], want[i])
					}
				}
			}
		}
	}

	// Weight without TopK has no ranking to bound: typed rejection.
	if _, _, err := eng.RunSelfCollect(ctx, ixP, Query{Weight: weight}); err == nil {
		t.Error("Weight without TopK accepted, want ErrBadQuery")
	}
}

// BenchmarkPlannerAutoVsForced is the planner's acceptance benchmark on the
// paper's 3000×3000 uniform top-10 workload: auto (planner decides per
// query) against the previously hard-coded OBJ. Auto must match or beat
// forced OBJ in both wall clock and node accesses — on this shape the
// planner picks OBJ itself, so the delta is pure planning overhead.
func BenchmarkPlannerAutoVsForced(b *testing.B) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(42))
	mk := func() *Index {
		pts := make([]Point, 3000)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000, ID: int64(i)}
		}
		ix, err := eng.BuildIndex(pts, IndexConfig{})
		if err != nil {
			b.Fatal(err)
		}
		return ix
	}
	ixP, ixQ := mk(), mk()
	defer ixP.Close()
	defer ixQ.Close()
	ctx := context.Background()

	run := func(b *testing.B, qry Query) {
		var st Stats
		qry.Stats = &st
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.RunCollect(ctx, ixQ, ixP, qry); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.NodeAccesses), "node-accesses/op")
	}
	b.Run("top10-auto", func(b *testing.B) { run(b, Query{TopK: 10}) })
	b.Run("top10-forced-obj", func(b *testing.B) {
		run(b, Query{TopK: 10, Algorithm: OBJ, ForceAlgorithm: true})
	})
}
