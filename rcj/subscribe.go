package rcj

import (
	"context"
	"errors"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// ErrSlowSubscriber terminates a subscription whose consumer fell behind:
// the index's bounded update feed overflowed and was shed rather than
// allowed to stall writers. The consumer should resubscribe (and read
// faster, or use a larger buffer).
var ErrSlowSubscriber = errors.New("rcj: subscription shed: consumer fell behind")

// EventType tags one subscription stream event.
type EventType string

const (
	// EventAdd delivers a pair newly in the result set (also used for the
	// initial state and after a resync).
	EventAdd EventType = "add"
	// EventRemove delivers a pair no longer in the result set.
	EventRemove EventType = "remove"
	// EventSync marks the end of a full-state replay (initial or after
	// resync): the events so far reproduce the exact current result set.
	EventSync EventType = "sync"
	// EventResync tells the consumer to discard its replayed state: a
	// deletion forced a monitor rebuild (insertion maintenance is exact and
	// local, deletion maintenance is impossible — ErrMonitorDelete), and the
	// full current result set follows as EventAdd events ending in
	// EventSync.
	EventResync EventType = "resync"
)

// Event is one element of a subscription stream. Replaying a stream —
// apply adds and removes in order, clear on resync — reproduces the
// monitor's exact pair set at every sync point.
type Event struct {
	Type EventType
	// Seq is the epoch sequence of the mutation that caused the event (the
	// current sequence for initial/sync/resync events).
	Seq uint64
	// Pair is set on add/remove events.
	Pair Pair
	// Pairs is the current result-set size, set on sync events.
	Pairs int
}

// Subscription is one live continuous query: a stream of exact result-set
// changes as the underlying mutable indexes evolve. C closes when the
// subscription ends — consumer Close, context cancellation, index close, or
// shedding — after which Err reports why (nil for a clean end).
type Subscription struct {
	C <-chan Event

	cancel context.CancelFunc
	done   chan struct{}
	mu     sync.Mutex
	err    error
}

// Err reports why the stream ended; valid after C closes.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close detaches the subscription; C closes promptly.
func (s *Subscription) Close() {
	s.cancel()
	<-s.done
}

func (s *Subscription) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// SubscribeLive opens a continuous query over the datasets of q and p (pass
// the same index twice for a self-join): the stream first replays the
// current result set (EventAdd… EventSync), then delivers exact incremental
// changes as mutation batches apply — insertions via the monitor's local
// maintenance, deletions via a monitor rebuild announced with EventResync.
// At least one side must be mutable; an immutable side contributes a frozen
// dataset. buf bounds both the event channel and the per-subscription
// update feed; a consumer that falls behind is shed with ErrSlowSubscriber.
func SubscribeLive(ctx context.Context, q, p *Index, buf int) (*Subscription, error) {
	self := q == p
	if q.live == nil && (self || p.live == nil) {
		return nil, ErrImmutableIndex
	}
	if buf <= 0 {
		buf = 64
	}

	st := &subState{q: q, p: p, self: self}
	var err error
	if q.live != nil {
		st.feedQ, st.seqQ, st.entriesQ, err = q.live.NewFeed(buf)
		if err != nil {
			return nil, err
		}
	} else if st.entriesQ, err = q.tree.ScanAll(); err != nil {
		return nil, err
	}
	if !self {
		if p.live != nil {
			st.feedP, st.seqP, st.entriesP, err = p.live.NewFeed(buf)
			if err != nil {
				st.detach()
				return nil, err
			}
		} else if st.entriesP, err = p.tree.ScanAll(); err != nil {
			st.detach()
			return nil, err
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	out := make(chan Event, buf)
	sub := &Subscription{C: out, cancel: cancel, done: make(chan struct{})}
	go st.loop(ctx, sub, out)
	return sub, nil
}

// subState is the subscription event loop's working set.
type subState struct {
	q, p *Index
	self bool

	feedQ, feedP       *live.Feed // nil for an immutable (or self-collapsed) side
	seqQ, seqP         uint64     // snapshot seqs; buffered updates at or below are stale
	entriesQ, entriesP []rtree.PointEntry

	mon *core.Monitor
}

func (st *subState) detach() {
	if st.feedQ != nil {
		st.q.live.CloseFeed(st.feedQ)
	}
	if st.feedP != nil {
		st.p.live.CloseFeed(st.feedP)
	}
}

// curSeq is the newest epoch sequence the subscription has incorporated.
func (st *subState) curSeq() uint64 {
	if st.seqP > st.seqQ {
		return st.seqP
	}
	return st.seqQ
}

func (st *subState) loop(ctx context.Context, sub *Subscription, out chan<- Event) {
	defer close(sub.done)
	defer close(out)
	defer st.detach()

	send := func(ev Event) bool {
		select {
		case out <- ev:
			return true
		case <-ctx.Done():
			return false
		}
	}

	// sendState replays the monitor's full current result set (sorted for a
	// deterministic event log) followed by a sync marker.
	sendState := func() bool {
		pairs := convertPairs(st.mon.Pairs())
		SortPairsByDiameter(pairs)
		seq := st.curSeq()
		for _, pr := range pairs {
			if !send(Event{Type: EventAdd, Seq: seq, Pair: pr}) {
				return false
			}
		}
		return send(Event{Type: EventSync, Seq: seq, Pairs: len(pairs)})
	}

	if err := st.seed(); err != nil {
		sub.fail(err)
		return
	}
	if !sendState() {
		return
	}

	// feedC returns a side's update channel; a nil feed yields a nil channel
	// (never selected).
	var chQ, chP chan live.Update
	if st.feedQ != nil {
		chQ = st.feedQ.C
	}
	if st.feedP != nil {
		chP = st.feedP.C
	}

	apply := func(u live.Update, intoQ bool) bool {
		skip := st.seqQ
		if !intoQ {
			skip = st.seqP
		}
		if u.Seq <= skip {
			return true // stale: already covered by a (re)snapshot
		}
		if intoQ {
			st.seqQ = u.Seq
		} else {
			st.seqP = u.Seq
		}
		if len(u.Del) > 0 {
			// Deletion cannot be maintained locally (core.ErrMonitorDelete):
			// re-seed the monitor from fresh snapshots and replay the state.
			if err := st.reseed(); err != nil {
				if !errors.Is(err, live.ErrClosed) {
					// Index closed underneath: the stream is ending anyway —
					// same clean end as the feed-close path.
					sub.fail(err)
				}
				return false
			}
			if !send(Event{Type: EventResync, Seq: st.curSeq()}) {
				return false
			}
			return sendState()
		}
		for _, e := range u.Ins {
			var added, removed []core.Pair
			var err error
			if intoQ && !st.self {
				added, removed, err = st.mon.AddQ(e.P, e.ID)
			} else {
				added, removed, err = st.mon.AddP(e.P, e.ID)
			}
			if err != nil {
				sub.fail(err)
				return false
			}
			for _, pr := range sortedEvents(removed) {
				if !send(Event{Type: EventRemove, Seq: u.Seq, Pair: pr}) {
					return false
				}
			}
			for _, pr := range sortedEvents(added) {
				if !send(Event{Type: EventAdd, Seq: u.Seq, Pair: pr}) {
					return false
				}
			}
		}
		return true
	}

	for {
		select {
		case <-ctx.Done():
			return
		case u, ok := <-chQ:
			if !ok {
				if st.feedQ.Shed() {
					sub.fail(ErrSlowSubscriber)
				}
				return
			}
			if !apply(u, true) {
				return
			}
		case u, ok := <-chP:
			if !ok {
				if st.feedP.Shed() {
					sub.fail(ErrSlowSubscriber)
				}
				return
			}
			if !apply(u, false) {
				return
			}
		}
	}
}

// seed builds the monitor over the current snapshots.
func (st *subState) seed() error {
	tq, err := monitorTree(st.entriesQ)
	if err != nil {
		return err
	}
	tp := tq
	if !st.self {
		if tp, err = monitorTree(st.entriesP); err != nil {
			return err
		}
	}
	st.mon, err = core.NewMonitor(tq, tp)
	return err
}

// reseed refreshes both live sides' snapshots and rebuilds the monitor —
// the deletion path. Updates already buffered at or below the new snapshot
// seqs are skipped by apply.
func (st *subState) reseed() error {
	var err error
	if st.q.live != nil {
		if st.seqQ, st.entriesQ, err = st.q.live.Resnapshot(); err != nil {
			return err
		}
	}
	if !st.self && st.p.live != nil {
		if st.seqP, st.entriesP, err = st.p.live.Resnapshot(); err != nil {
			return err
		}
	}
	return st.seed()
}

// monitorTree bulk-loads a private in-memory tree the monitor may mutate.
func monitorTree(entries []rtree.PointEntry) (*rtree.Tree, error) {
	ps := storage.DefaultPageSize
	t, err := rtree.New(storage.NewMemPager(ps), buffer.NewPool(-1), rtree.Config{PageSize: ps})
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return t, nil
	}
	if err := t.BulkLoad(entries, 0); err != nil {
		return nil, err
	}
	return t, nil
}

// sortedEvents orders one maintenance step's pair delta deterministically.
func sortedEvents(raw []core.Pair) []Pair {
	out := convertPairs(raw)
	SortPairsByDiameter(out)
	return out
}
