package rcj

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

// pairBytes renders pairs in the deterministic total order with full float
// precision — the "byte-identical" comparison the live-equivalence gate is
// specified against.
func pairBytes(pairs []Pair) string {
	out := append([]Pair(nil), pairs...)
	SortPairsByDiameter(out)
	var b strings.Builder
	for _, pr := range out {
		fmt.Fprintf(&b, "%d,%d,%v,%v,%v\n", pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)
	}
	return b.String()
}

// streamReplay consumes a subscription stream in the background, applying
// adds/removes/resyncs to a pair set and snapshotting it at every sync
// marker. waitSync blocks until a sync at or past the given epoch arrives.
type streamReplay struct {
	t  *testing.T
	mu sync.Mutex

	set      map[[2]int64]bool
	syncSeq  uint64
	syncSet  map[[2]int64]bool
	nResyncs int
	synced   chan struct{} // pulsed (close+replace) on every sync
}

func newStreamReplay(t *testing.T, sub *Subscription) *streamReplay {
	r := &streamReplay{t: t, set: map[[2]int64]bool{}, synced: make(chan struct{})}
	go func() {
		for ev := range sub.C {
			r.mu.Lock()
			switch ev.Type {
			case EventAdd:
				r.set[[2]int64{ev.Pair.P.ID, ev.Pair.Q.ID}] = true
			case EventRemove:
				delete(r.set, [2]int64{ev.Pair.P.ID, ev.Pair.Q.ID})
			case EventResync:
				r.set = map[[2]int64]bool{}
				r.nResyncs++
			case EventSync:
				if ev.Pairs != len(r.set) {
					r.t.Errorf("sync reports %d pairs, replay holds %d", ev.Pairs, len(r.set))
				}
				r.syncSeq = ev.Seq
				r.syncSet = map[[2]int64]bool{}
				for k := range r.set {
					r.syncSet[k] = true
				}
				close(r.synced)
				r.synced = make(chan struct{})
			}
			r.mu.Unlock()
		}
	}()
	return r
}

func (r *streamReplay) waitSync(seq uint64) map[[2]int64]bool {
	r.t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		r.mu.Lock()
		if r.syncSeq >= seq {
			out := r.syncSet
			r.mu.Unlock()
			return out
		}
		ch := r.synced
		r.mu.Unlock()
		select {
		case <-ch:
		case <-deadline:
			r.t.Fatalf("no sync at seq >= %d within 10s", seq)
		}
	}
}

func (r *streamReplay) resyncs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nResyncs
}

// mutateRandomly applies one random step to a mutable index and mirrors it
// in the model map; returns a description for failure messages.
func mutateRandomly(t *testing.T, rng *rand.Rand, ix *Index, model map[int64]Point, nextID *int64) string {
	t.Helper()
	switch op := rng.Intn(10); {
	case op < 6 || len(model) == 0:
		n := 1 + rng.Intn(6)
		ins := make([]Point, n)
		for i := range ins {
			ins[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: *nextID}
			*nextID++
		}
		if _, err := ix.Insert(ins...); err != nil {
			t.Fatalf("insert: %v", err)
		}
		for _, p := range ins {
			model[p.ID] = p
		}
		return fmt.Sprintf("insert %d", n)
	case op < 9:
		var del []int64
		for id := range model {
			del = append(del, id)
			if len(del) == 2 {
				break
			}
		}
		if _, err := ix.Delete(del...); err != nil {
			t.Fatalf("delete: %v", err)
		}
		for _, id := range del {
			delete(model, id)
		}
		return fmt.Sprintf("delete %d", len(del))
	default:
		if err := ix.Compact(); err != nil {
			t.Fatalf("compact: %v", err)
		}
		return "compact"
	}
}

func modelPoints(model map[int64]Point) []Point {
	pts := make([]Point, 0, len(model))
	for _, p := range model {
		pts = append(pts, p)
	}
	return pts
}

// TestLiveEquivalenceJoin is the live-equivalence gate for two-set joins:
// after every random interleaving of inserts, deletes, and compactions, a
// query over the live indexes is byte-identical to one over fresh
// batch-built indexes holding the same final point sets.
func TestLiveEquivalenceJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	eng := NewEngine(EngineConfig{BufferPages: 1024})
	ctx := context.Background()

	// P opens from a sealed base (the OpenMutableIndex path, on-disk
	// generations); Q is born in memory (the NewMutableIndex path).
	dir := t.TempDir()
	basePts := randomPoints(rng, 200)
	base := mustIndex(t, basePts, IndexConfig{})
	basePath := filepath.Join(dir, "p.rcjx")
	if err := base.Save(basePath); err != nil {
		t.Fatal(err)
	}
	base.Close()
	liveP, err := eng.OpenMutableIndex(basePath, MutableConfig{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer liveP.Close()
	qPts := randomPoints(rng, 150)
	liveQ, err := eng.NewMutableIndex(qPts, MutableConfig{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer liveQ.Close()

	modelP, modelQ := map[int64]Point{}, map[int64]Point{}
	for _, p := range basePts {
		modelP[p.ID] = p
	}
	for _, p := range qPts {
		modelQ[p.ID] = p
	}
	nextP, nextQ := int64(10000), int64(20000)

	verify := func(step int, what string) {
		got, _, err := eng.RunCollect(ctx, liveQ, liveP, Query{})
		if err != nil {
			t.Fatalf("step %d (%s): live join: %v", step, what, err)
		}
		freshP, err := eng.BuildIndex(modelPoints(modelP), IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer freshP.Close()
		freshQ, err := eng.BuildIndex(modelPoints(modelQ), IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer freshQ.Close()
		want, _, err := eng.RunCollect(ctx, freshQ, freshP, Query{})
		if err != nil {
			t.Fatalf("step %d (%s): batch join: %v", step, what, err)
		}
		if g, w := pairBytes(got), pairBytes(want); g != w {
			t.Fatalf("step %d (%s): live join diverged from batch build\nlive:  %d pairs\nbatch: %d pairs",
				step, what, len(got), len(want))
		}
	}

	verify(-1, "initial")
	for step := 0; step < 60; step++ {
		var what string
		if rng.Intn(2) == 0 {
			what = "P " + mutateRandomly(t, rng, liveP, modelP, &nextP)
		} else {
			what = "Q " + mutateRandomly(t, rng, liveQ, modelQ, &nextQ)
		}
		if step%10 == 9 || step == 59 {
			verify(step, what)
		}
	}
}

// TestLiveEquivalenceSelfJoin covers the self-join path, where tombstones
// disable the face rule on both traversal roles at once.
func TestLiveEquivalenceSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	eng := NewEngine(EngineConfig{BufferPages: 1024})
	ctx := context.Background()
	pts := randomPoints(rng, 250)
	ix, err := eng.NewMutableIndex(pts, MutableConfig{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	model := map[int64]Point{}
	for _, p := range pts {
		model[p.ID] = p
	}
	nextID := int64(10000)

	for step := 0; step < 40; step++ {
		what := mutateRandomly(t, rng, ix, model, &nextID)
		if step%8 != 7 && step != 39 {
			continue
		}
		got, _, err := eng.RunSelfCollect(ctx, ix, Query{})
		if err != nil {
			t.Fatalf("step %d (%s): live self-join: %v", step, what, err)
		}
		fresh, err := eng.BuildIndex(modelPoints(model), IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := eng.RunSelfCollect(ctx, fresh, Query{})
		fresh.Close()
		if err != nil {
			t.Fatalf("step %d (%s): batch self-join: %v", step, what, err)
		}
		if pairBytes(got) != pairBytes(want) {
			t.Fatalf("step %d (%s): live self-join diverged (%d pairs vs %d)",
				step, what, len(got), len(want))
		}
	}
}

// TestLiveEquivalenceSubscription checks the other half of the gate: the
// subscription event log, replayed, lands on exactly the pair set of a
// fresh join over the final points — through insert maintenance, the
// deletion resync path, and a compaction (which must deliver nothing).
func TestLiveEquivalenceSubscription(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	eng := NewEngine(EngineConfig{BufferPages: 1024})
	ctx := context.Background()
	pPts := randomPoints(rng, 120)
	qPts := randomPoints(rng, 120)
	liveP, err := eng.NewMutableIndex(pPts, MutableConfig{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	liveQ, err := eng.NewMutableIndex(qPts, MutableConfig{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}

	sub, err := SubscribeLive(ctx, liveQ, liveP, 4096)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the stream into a pair set from a second goroutine while the
	// mutations run, so delivery overlaps application (the -race half).
	// Every EventSync snapshots the replayed set with its seq, so the main
	// goroutine can wait for the sync that covers the final epoch.
	replay := newStreamReplay(t, sub)

	modelP, modelQ := map[int64]Point{}, map[int64]Point{}
	for _, p := range pPts {
		modelP[p.ID] = p
	}
	for _, p := range qPts {
		modelQ[p.ID] = p
	}
	nextP, nextQ := int64(10000), int64(20000)
	for step := 0; step < 30; step++ {
		if rng.Intn(2) == 0 {
			mutateRandomly(t, rng, liveP, modelP, &nextP)
		} else {
			mutateRandomly(t, rng, liveQ, modelQ, &nextQ)
		}
	}
	// Quiesce deterministically: one last delete forces a resync, whose
	// full-state replay is stamped with the final epoch sequence.
	var finalSeq uint64
	for id := range modelQ {
		seq, err := liveQ.Delete(id)
		if err != nil {
			t.Fatal(err)
		}
		delete(modelQ, id)
		finalSeq = seq
		break
	}
	final := replay.waitSync(finalSeq)
	sub.Close()
	if err := sub.Err(); err != nil {
		t.Fatalf("subscription ended with %v", err)
	}
	if replay.resyncs() == 0 {
		t.Fatal("no resync despite deletions (seed must exercise the delete path)")
	}
	liveP.Close()
	liveQ.Close()

	freshP := mustIndex(t, modelPoints(modelP), IndexConfig{})
	freshQ := mustIndex(t, modelPoints(modelQ), IndexConfig{})
	want, _, err := Join(freshQ, freshP, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(keySet(want), final) {
		t.Fatalf("replayed stream holds %d pairs, fresh join %d", len(final), len(want))
	}
}

// TestLiveSubscriptionSelfJoin replays a self-join stream.
func TestLiveSubscriptionSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	eng := NewEngine(EngineConfig{BufferPages: 1024})
	pts := randomPoints(rng, 150)
	ix, err := eng.NewMutableIndex(pts, MutableConfig{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := SubscribeLive(context.Background(), ix, ix, 4096)
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]Point{}
	for _, p := range pts {
		model[p.ID] = p
	}
	nextID := int64(10000)
	replay := newStreamReplay(t, sub)
	for step := 0; step < 25; step++ {
		mutateRandomly(t, rng, ix, model, &nextID)
	}
	var finalSeq uint64
	for id := range model {
		seq, err := ix.Delete(id)
		if err != nil {
			t.Fatal(err)
		}
		delete(model, id)
		finalSeq = seq
		break
	}
	final := replay.waitSync(finalSeq)
	sub.Close()
	if err := sub.Err(); err != nil {
		t.Fatalf("subscription ended with %v", err)
	}
	ix.Close()
	fresh := mustIndex(t, modelPoints(model), IndexConfig{})
	want, _, err := SelfJoin(fresh, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(keySet(want), final) {
		t.Fatalf("replayed self-join stream holds %d pairs, fresh self-join %d", len(final), len(want))
	}
}

// TestLiveSlowSubscriberShed verifies a consumer that stops reading is shed
// with ErrSlowSubscriber instead of stalling writers.
func TestLiveSlowSubscriberShed(t *testing.T) {
	eng := NewEngine(EngineConfig{BufferPages: 256})
	// P is a frozen far-apart row; every Q insert lands next to its own P
	// point, so each batch provokes at least one add event.
	pPts := make([]Point, 32)
	for i := range pPts {
		pPts[i] = Point{X: float64(i) * 1000, Y: 0, ID: int64(i)}
	}
	liveP := mustIndex(t, pPts, IndexConfig{})
	defer liveP.Close()
	liveQ, err := eng.NewMutableIndex(nil, MutableConfig{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer liveQ.Close()
	sub, err := SubscribeLive(context.Background(), liveQ, liveP, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ { // nobody reads sub.C: the feed must overflow
		if _, err := liveQ.Insert(Point{X: float64(i) * 1000, Y: 1, ID: int64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for range sub.C {
	}
	if err := sub.Err(); !errors.Is(err, ErrSlowSubscriber) {
		t.Fatalf("subscription ended with %v, want ErrSlowSubscriber", err)
	}
}

// TestLiveGenerationByteIdentity: the generation a compaction seals is
// byte-identical to a cold build+save over the ID-sorted dumped point set —
// the contract the live-smoke byte-diff (and remote generation serving)
// rests on.
func TestLiveGenerationByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	eng := NewEngine(EngineConfig{BufferPages: 1024})
	dir := t.TempDir()
	basePts := randomPoints(rng, 300)
	base := mustIndex(t, basePts, IndexConfig{})
	basePath := filepath.Join(dir, "live.rcjx")
	if err := base.Save(basePath); err != nil {
		t.Fatal(err)
	}
	base.Close()
	ix, err := eng.OpenMutableIndex(basePath, MutableConfig{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	if _, err := ix.Insert(randomPointsAt(rng, 50, 1000)...); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Delete(3, 7, 250, 251, 252); err != nil {
		t.Fatal(err)
	}
	sealSeq := ix.Epoch() // seals the point set as of this epoch
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	st, ok := ix.LiveStats()
	if !ok || st.Generation == "" {
		t.Fatalf("no sealed generation after compact (stats %+v)", st)
	}
	if want := storage.GenerationPath(basePath, sealSeq); st.Generation != want {
		t.Fatalf("generation path %q, want %q", st.Generation, want)
	}

	pts, err := ix.Points() // ID-sorted for mutable indexes: the canonical rebuild input
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := eng.BuildIndex(pts, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	freshPath := filepath.Join(dir, "rebuilt.rcjx")
	if err := fresh.Save(freshPath); err != nil {
		t.Fatal(err)
	}
	gen, err := os.ReadFile(st.Generation)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := os.ReadFile(freshPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gen, rebuilt) {
		t.Fatalf("sealed generation differs from cold rebuild (%d vs %d bytes)", len(gen), len(rebuilt))
	}
}

func randomPointsAt(rng *rand.Rand, n int, idBase int64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: idBase + int64(i)}
	}
	return pts
}

// TestMutableAPIErrors pins the typed error surface.
func TestMutableAPIErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	eng := NewEngine(EngineConfig{})
	frozen := mustIndex(t, randomPoints(rng, 10), IndexConfig{})
	if _, err := frozen.Insert(Point{ID: 99}); !errors.Is(err, ErrImmutableIndex) {
		t.Fatalf("Insert on immutable: %v", err)
	}
	if _, err := frozen.Delete(1); !errors.Is(err, ErrImmutableIndex) {
		t.Fatalf("Delete on immutable: %v", err)
	}
	if err := frozen.Compact(); !errors.Is(err, ErrImmutableIndex) {
		t.Fatalf("Compact on immutable: %v", err)
	}
	if frozen.Mutable() || frozen.Epoch() != 0 {
		t.Fatal("immutable index claims mutability")
	}
	if _, err := SubscribeLive(context.Background(), frozen, frozen, 4); !errors.Is(err, ErrImmutableIndex) {
		t.Fatalf("SubscribeLive with no mutable side: %v", err)
	}

	ix, err := eng.NewMutableIndex(randomPoints(rng, 10), MutableConfig{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if !ix.Mutable() {
		t.Fatal("mutable index claims immutability")
	}
	if _, err := ix.Insert(Point{X: 1, Y: 1, ID: 3}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if _, err := ix.Delete(12345); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown delete: %v", err)
	}
	if err := ix.Save(t.TempDir() + "/x.rcjx"); err == nil {
		t.Fatal("Save on a mutable index succeeded; want the compaction-owns-persistence error")
	}
}

// TestLiveConcurrentQueryMutateCompact runs joins, mutations, and
// compactions concurrently: every join must succeed on its pinned snapshot.
// Run under -race this is the acceptance test for the epoch handoff.
func TestLiveConcurrentQueryMutateCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	eng := NewEngine(EngineConfig{BufferPages: 2048})
	ctx := context.Background()
	ix, err := eng.NewMutableIndex(randomPoints(rng, 300), MutableConfig{CompactEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := eng.RunSelfCollect(ctx, ix, Query{}); err != nil {
					t.Errorf("concurrent self-join: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 300; i++ {
		if _, err := ix.Insert(Point{X: rand.Float64() * 1000, Y: rand.Float64() * 1000, ID: int64(10000 + i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%50 == 49 {
			if _, err := ix.Delete(int64(10000 + i)); err != nil {
				t.Fatalf("delete: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if st, _ := ix.LiveStats(); st.Compactions == 0 {
		t.Fatal("no background compaction ran despite CompactEvery=64")
	}
}
