package rcj

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/storage"
)

// saveBackends are the backends exercised by the persistence tests; mmap
// only where the platform supports it.
func saveBackends() []Backend {
	b := []Backend{BackendMem, BackendFile}
	if storage.MmapSupported {
		b = append(b, BackendMmap)
	}
	return b
}

func collectSorted(t *testing.T, pairs []Pair, stats Stats, err error) []Pair {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	SortPairsByDiameter(pairs)
	return pairs
}

func equalPairs(t *testing.T, name string, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

// TestSaveOpenRoundTrip is the acceptance test: build → Save → OpenIndex in
// a fresh Engine → identical join output to the in-memory build, for
// INJ/BIJ/OBJ and the self-join, on every backend.
func TestSaveOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := randomPoints(rng, 400)
	qs := randomPoints(rng, 350)

	build := NewEngine(EngineConfig{})
	builtP, err := build.BuildIndex(ps, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	builtQ, err := build.BuildIndex(qs, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pathP := filepath.Join(dir, "p.rcjx")
	pathQ := filepath.Join(dir, "q.rcjx")
	if err := builtP.Save(pathP); err != nil {
		t.Fatal(err)
	}
	if err := builtQ.Save(pathQ); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	algs := map[string]Algorithm{"inj": INJ, "bij": BIJ, "obj": OBJ}
	want := map[string][]Pair{}
	for name, alg := range algs {
		pairs, st, err := build.JoinCollect(ctx, builtQ, builtP, JoinOptions{Algorithm: alg, ForceAlgorithm: true})
		want[name] = collectSorted(t, pairs, st, err)
	}
	selfPairs, st, err := build.SelfJoinCollect(ctx, builtP, JoinOptions{})
	want["self"] = collectSorted(t, selfPairs, st, err)
	builtP.Close()
	builtQ.Close()

	for _, be := range saveBackends() {
		t.Run(be.String(), func(t *testing.T) {
			eng := NewEngine(EngineConfig{BufferPages: 128})
			ixP, err := eng.OpenIndex(pathP, IndexConfig{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			defer ixP.Close()
			ixQ, err := eng.OpenIndex(pathQ, IndexConfig{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			defer ixQ.Close()
			if ixP.Len() != len(ps) || ixQ.Len() != len(qs) {
				t.Fatalf("reopened sizes %d/%d, want %d/%d", ixP.Len(), ixQ.Len(), len(ps), len(qs))
			}
			for name, alg := range algs {
				pairs, st, err := eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{Algorithm: alg, ForceAlgorithm: true})
				equalPairs(t, name, collectSorted(t, pairs, st, err), want[name])
			}
			pairs, st, err := eng.SelfJoinCollect(ctx, ixP, JoinOptions{})
			equalPairs(t, "self", collectSorted(t, pairs, st, err), want["self"])

			// Points round-trip too (leaf order may differ from input order).
			got, err := ixP.Points()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(ps) {
				t.Fatalf("Points() = %d, want %d", len(got), len(ps))
			}
		})
	}
}

// TestOpenIndexConcurrentJoins runs several joins at once over one reopened
// index pair sharing the engine's sharded pool — the cold-start serving
// scenario — and checks every join sees the full result set. Run with -race.
func TestOpenIndexConcurrentJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := randomPoints(rng, 300)
	qs := randomPoints(rng, 300)
	dir := t.TempDir()
	pathP := filepath.Join(dir, "p.rcjx")
	pathQ := filepath.Join(dir, "q.rcjx")
	{
		eng := NewEngine(EngineConfig{})
		ixP, err := eng.BuildIndex(ps, IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ixQ, err := eng.BuildIndex(qs, IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		pairs, st, err := eng.JoinCollect(context.Background(), ixQ, ixP, JoinOptions{})
		wantLen := len(collectSorted(t, pairs, st, err))
		if wantLen == 0 {
			t.Fatal("test wants a non-empty join")
		}
		if err := ixP.Save(pathP); err != nil {
			t.Fatal(err)
		}
		if err := ixQ.Save(pathQ); err != nil {
			t.Fatal(err)
		}
		testConcurrentOpens(t, pathP, pathQ, wantLen)
	}
}

func testConcurrentOpens(t *testing.T, pathP, pathQ string, wantLen int) {
	t.Helper()
	for _, be := range saveBackends() {
		t.Run(be.String(), func(t *testing.T) {
			eng := NewEngine(EngineConfig{BufferPages: 64}) // small: force eviction traffic
			ixP, err := eng.OpenIndex(pathP, IndexConfig{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			defer ixP.Close()
			ixQ, err := eng.OpenIndex(pathQ, IndexConfig{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			defer ixQ.Close()
			const workers = 6
			var wg sync.WaitGroup
			errs := make([]error, workers)
			lens := make([]int, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					opts := JoinOptions{}
					if w%2 == 1 {
						opts.Parallelism = 2
					}
					pairs, _, err := eng.JoinCollect(context.Background(), ixQ, ixP, opts)
					errs[w], lens[w] = err, len(pairs)
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				if errs[w] != nil {
					t.Fatalf("worker %d: %v", w, errs[w])
				}
				if lens[w] != wantLen {
					t.Fatalf("worker %d: %d pairs, want %d", w, lens[w], wantLen)
				}
			}
		})
	}
}

// TestOpenIndexCorruption checks that every class of damaged file fails
// OpenIndex with the right typed error and no panic.
func TestOpenIndexCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := mustIndex(t, randomPoints(rng, 200), IndexConfig{})
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.rcjx")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damage := func(t *testing.T, f func(b []byte) []byte) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "damaged.rcjx")
		if err := os.WriteFile(p, f(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		mut  func(b []byte) []byte
		want error
	}{
		{"truncated pages", func(b []byte) []byte { return b[:len(b)-512] }, storage.ErrTruncated},
		{"truncated superblock", func(b []byte) []byte { return b[:40] }, storage.ErrTruncated},
		{"wrong magic", func(b []byte) []byte { b[0] = 'Z'; return b }, storage.ErrBadMagic},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[8:], storage.FormatVersion3+1)
			return b
		}, storage.ErrBadVersion},
		{"bad checksum", func(b []byte) []byte { b[28] ^= 0x01; return b }, storage.ErrBadChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := damage(t, tc.mut)
			if _, err := OpenIndex(p, IndexConfig{}); !errors.Is(err, tc.want) {
				t.Fatalf("OpenIndex = %v, want %v", err, tc.want)
			}
			eng := NewEngine(EngineConfig{})
			if _, err := eng.OpenIndex(p, IndexConfig{}); !errors.Is(err, tc.want) {
				t.Fatalf("Engine.OpenIndex = %v, want %v", err, tc.want)
			}
		})
	}
	t.Run("page size mismatch", func(t *testing.T) {
		if _, err := OpenIndex(path, IndexConfig{PageSize: 2048}); !errors.Is(err, storage.ErrPageSizeMismatch) {
			t.Fatalf("OpenIndex = %v, want ErrPageSizeMismatch", err)
		}
	})
	t.Run("metadata from another build", func(t *testing.T) {
		// Re-seal a superblock whose MBR disagrees with the pages.
		b := append([]byte(nil), pristine...)
		binary.LittleEndian.PutUint64(b[36:], binary.LittleEndian.Uint64(b[36:])^0x1)
		sb, err := storage.DecodeSuperblock(b[:storage.SuperblockSize])
		if !errors.Is(err, storage.ErrBadChecksum) {
			t.Fatalf("tamper not caught by checksum: %v (%+v)", err, sb)
		}
	})
}

// TestSaveOfFileBuiltIndex saves an index whose build pager is itself
// file-backed (IndexConfig.Path), covering the pager-agnostic Save path.
func TestSaveOfFileBuiltIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 150)
	dir := t.TempDir()
	ix := mustIndex(t, pts, IndexConfig{Path: filepath.Join(dir, "build.pages")})
	path := filepath.Join(dir, "ix.rcjx")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := OpenIndex(path, IndexConfig{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	a, _, err := SelfJoin(ix, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SelfJoin(re, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	equalPairs(t, "self", b, a)
}
