package rcj

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

func testPoints(rng *rand.Rand, n int, idBase int64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: idBase + int64(i)}
	}
	return pts
}

func sortedPairs(pairs []Pair) []Pair {
	out := append([]Pair(nil), pairs...)
	SortPairsByDiameter(out)
	return out
}

func samePairs(t *testing.T, label string, want, got []Pair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	w, g := sortedPairs(want), sortedPairs(got)
	for i := range w {
		if w[i].P.ID != g[i].P.ID || w[i].Q.ID != g[i].Q.ID {
			t.Fatalf("%s: pair %d is <%d,%d>, want <%d,%d>",
				label, i, g[i].P.ID, g[i].Q.ID, w[i].P.ID, w[i].Q.ID)
		}
	}
}

// TestEngineConcurrentJoins runs many simultaneous joins on one shared
// sharded pool and checks every result set against the sequential run. Run
// under -race this is the acceptance test for the shared Engine.
func TestEngineConcurrentJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	eng := NewEngine(EngineConfig{BufferPages: 256})
	ixP, err := eng.BuildIndex(testPoints(rng, 600, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ixQ, err := eng.BuildIndex(testPoints(rng, 500, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixP.Close()
	defer ixQ.Close()

	want, _, err := Join(mustIndex(t, pointsOf(t, ixQ), IndexConfig{}), mustIndex(t, pointsOf(t, ixP), IndexConfig{}), JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const joins = 12
	var wg sync.WaitGroup
	results := make([][]Pair, joins)
	errs := make([]error, joins)
	for i := 0; i < joins; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := JoinOptions{}
			if i%3 == 1 {
				opts.Parallelism = 4 // mix parallel joins into the load
			}
			if i%2 == 0 {
				results[i], _, errs[i] = eng.JoinCollect(context.Background(), ixQ, ixP, opts)
			} else {
				results[i], errs[i] = Collect(eng.Join(context.Background(), ixQ, ixP, opts))
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < joins; i++ {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		samePairs(t, fmt.Sprintf("join %d", i), want, results[i])
	}
}

// pointsOf extracts an index's points so a fresh standalone index (private
// pool, no engine) can compute the independent sequential baseline.
func pointsOf(t *testing.T, ix *Index) []Point {
	t.Helper()
	pts, err := ix.Points()
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestEngineStreamMatchesCollect checks the acceptance criterion that the
// streaming iterator yields exactly the pairs Collect returns.
func TestEngineStreamMatchesCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	eng := NewEngine(EngineConfig{})
	ixP, _ := eng.BuildIndex(testPoints(rng, 400, 0), IndexConfig{})
	ixQ, _ := eng.BuildIndex(testPoints(rng, 400, 0), IndexConfig{})
	defer ixP.Close()
	defer ixQ.Close()

	for _, par := range []int{0, 4} {
		opts := JoinOptions{Parallelism: par}
		collected, _, err := eng.JoinCollect(context.Background(), ixQ, ixP, opts)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := Collect(eng.Join(context.Background(), ixQ, ixP, opts))
		if err != nil {
			t.Fatal(err)
		}
		samePairs(t, fmt.Sprintf("par=%d", par), collected, streamed)
	}
}

func TestEngineSelfJoinStream(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	eng := NewEngine(EngineConfig{})
	ix, _ := eng.BuildIndex(testPoints(rng, 300, 0), IndexConfig{})
	defer ix.Close()

	collected, _, err := eng.SelfJoinCollect(context.Background(), ix, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Collect(eng.SelfJoin(context.Background(), ix, JoinOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "self", collected, streamed)
	for _, pr := range streamed {
		if pr.P.ID >= pr.Q.ID {
			t.Fatalf("non-canonical self pair <%d,%d>", pr.P.ID, pr.Q.ID)
		}
	}
}

// waitForGoroutines polls until the goroutine count returns to the baseline
// (runtime bookkeeping makes an immediate check flaky).
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestEngineCancellation checks that a cancelled context aborts a streaming
// join promptly, surfaces the context error, and leaks no goroutines.
func TestEngineCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	eng := NewEngine(EngineConfig{})
	ixP, _ := eng.BuildIndex(testPoints(rng, 1500, 0), IndexConfig{})
	ixQ, _ := eng.BuildIndex(testPoints(rng, 1500, 0), IndexConfig{})
	defer ixP.Close()
	defer ixQ.Close()

	total, _, err := eng.JoinCollect(context.Background(), ixQ, ixP, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(total) < 20 {
		t.Skipf("dataset yields only %d pairs", len(total))
	}

	for _, par := range []int{0, 4} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			var got int
			var sawErr error
			for pr, err := range eng.Join(ctx, ixQ, ixP, JoinOptions{Parallelism: par}) {
				if err != nil {
					sawErr = err
					break
				}
				_ = pr
				got++
				if got == 5 {
					cancel()
				}
			}
			cancel()
			if !errors.Is(sawErr, context.Canceled) {
				t.Fatalf("iterator error = %v, want context.Canceled", sawErr)
			}
			if got >= len(total) {
				t.Fatalf("cancelled join still streamed all %d pairs", got)
			}
			waitForGoroutines(t, base)
		})
	}
}

// TestEngineEarlyBreak abandons the iterator mid-stream (the k-results use
// case) and checks the producer goroutines are reaped.
func TestEngineEarlyBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	eng := NewEngine(EngineConfig{})
	ixP, _ := eng.BuildIndex(testPoints(rng, 1200, 0), IndexConfig{})
	ixQ, _ := eng.BuildIndex(testPoints(rng, 1200, 0), IndexConfig{})
	defer ixP.Close()
	defer ixQ.Close()

	for _, par := range []int{0, 4} {
		base := runtime.NumGoroutine()
		got := 0
		for pr, err := range eng.Join(context.Background(), ixQ, ixP, JoinOptions{Parallelism: par}) {
			if err != nil {
				t.Fatal(err)
			}
			_ = pr
			got++
			if got == 3 {
				break
			}
		}
		if got != 3 {
			t.Fatalf("broke after %d pairs, want 3", got)
		}
		waitForGoroutines(t, base)
	}
}

func TestEnginePreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	eng := NewEngine(EngineConfig{})
	ix, _ := eng.BuildIndex(testPoints(rng, 100, 0), IndexConfig{})
	defer ix.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs, err := Collect(eng.SelfJoin(ctx, ix, JoinOptions{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(pairs) != 0 {
		t.Fatalf("pre-cancelled join yielded %d pairs", len(pairs))
	}
}

// TestEngineOwnersIsolated checks that two engine indexes never collide in
// the shared pool even when their page ids overlap.
func TestEngineOwnersIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	eng := NewEngine(EngineConfig{BufferPages: 64})
	a, _ := eng.BuildIndex(testPoints(rng, 200, 0), IndexConfig{})
	b, _ := eng.BuildIndex(testPoints(rng, 200, 1000), IndexConfig{})
	defer a.Close()
	defer b.Close()
	if a.owner == b.owner {
		t.Fatalf("indexes share owner id %d", a.owner)
	}
	got, _, err := eng.JoinCollect(context.Background(), a, b, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantA := mustIndex(t, pointsOf(t, a), IndexConfig{})
	wantB := mustIndex(t, pointsOf(t, b), IndexConfig{})
	want, _, err := Join(wantA, wantB, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "owners", want, got)
}
