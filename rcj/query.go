package rcj

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/stream"
)

// Rect is an axis-aligned query window in dataset coordinates. Containment
// is closed: points on the boundary are inside.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether (x, y) lies inside or on the boundary of r.
func (r Rect) Contains(x, y float64) bool {
	return r.MinX <= x && x <= r.MaxX && r.MinY <= y && y <= r.MaxY
}

func (r Rect) geom() geom.Rect {
	return geom.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// ErrBadQuery is wrapped by every query-validation failure.
var ErrBadQuery = errors.New("rcj: invalid query")

// Query is the composable ring-constrained join request: which algorithm to
// run, how wide to fan out, and which subset of the result to return. The
// zero value is the unconstrained join under OBJ, the paper's best
// algorithm.
//
// The predicates — MaxDiameter, MinDistance, Region, TopK, Limit — are
// pushed down into the index traversal rather than applied to a
// materialized result: subtrees that cannot contribute a qualifying pair
// are pruned (observable via Stats.NodesPruned), and a TopK query tightens
// its own distance bound as better pairs are found (branch-and-bound). For
// every combination the output is set-identical to post-filtering the
// unconstrained join with Matches (plus the TopK/Limit truncation).
type Query struct {
	// Algorithm picks the strategy. The zero value without ForceAlgorithm
	// means "planner decides": the query resolves through the cost-based
	// planner (Resolve), which picks among the paper's algorithms from the
	// inputs' metadata and the calibrated cost model. Entry points that
	// cannot consult a planner fall back to OBJ, the paper's dominant
	// algorithm, so the zero value never silently runs INJ.
	Algorithm Algorithm
	// ForceAlgorithm uses Algorithm verbatim even when it is the zero value,
	// bypassing the planner entirely.
	ForceAlgorithm bool
	// Parallelism, when > 1, runs the join across that many goroutines, and
	// when 0 lets the planner choose. The result set is identical; emission
	// order is not deterministic (TopK output is always in ranking order
	// regardless).
	Parallelism int

	// MaxDiameter, when > 0, keeps only pairs whose ring diameter is at
	// most this — the tourist's "no pair wider than I'm willing to walk".
	MaxDiameter float64
	// MinDistance, when > 0, drops pairs whose two points are closer than
	// this (trivially-tight pairs a planner may want to skip).
	MinDistance float64
	// Region, when non-nil, keeps only pairs whose derived middleman
	// location (the circle center) lies inside the window.
	Region *Rect
	// TopK, when > 0, returns only the k pairs with the smallest ring
	// diameters (ties broken by ascending P.ID then Q.ID), in ascending
	// order — the head of the paper's browsing order, computed without
	// materializing the rest. TopK results do not stream incrementally: the
	// iterator yields them when the traversal completes.
	TopK int
	// Limit, when > 0, stops the join after this many pairs. Combined with
	// TopK it truncates the ranking; alone it returns a traversal-dependent
	// subset (cheap "peek at some results").
	Limit int

	// SortByDiameter orders collected results by ascending ring diameter
	// (RunCollect only; streaming ignores it, and TopK output is already in
	// that order).
	SortByDiameter bool
	// Stats, when non-nil, receives the run's statistics. For streaming
	// runs it is filled when the iterator terminates (the write
	// happens-before the range loop returns).
	Stats *Stats

	// Weight, when non-nil with TopK > 0, flips the top-k ranking from
	// ascending ring diameter to DESCENDING combined endpoint weight
	// w(P)+w(Q) — the school-bus pickup scenario: the k middleman locations
	// covering the heaviest point pairs. The output equals the head of
	// RankPairsByWeight over the unconstrained result, and the k-th combined
	// score becomes a dynamic traversal bound (pairs that cannot reach it
	// are killed before verification). The function must be pure; it is
	// called concurrently. Requires TopK > 0.
	Weight func(Point) float64
	// PlanOut, when non-nil, receives the resolved plan (the planner's
	// decision, or the echoed fixed plan) when the query is executed or
	// explicitly resolved.
	PlanOut *PlanDecision

	// predOrder is the planner-chosen predicate evaluation order, set by
	// Resolve and carried to the executor. Reordering never changes the
	// admitted set (the predicates are a pure conjunction).
	predOrder []core.Predicate
}

// Validate reports whether the query is well-formed.
func (q Query) Validate() error {
	switch {
	case q.Parallelism < 0:
		return fmt.Errorf("%w: negative parallelism %d", ErrBadQuery, q.Parallelism)
	case q.MaxDiameter < 0:
		return fmt.Errorf("%w: negative max diameter %g", ErrBadQuery, q.MaxDiameter)
	case q.MinDistance < 0:
		return fmt.Errorf("%w: negative min distance %g", ErrBadQuery, q.MinDistance)
	case q.TopK < 0:
		return fmt.Errorf("%w: negative top-k %d", ErrBadQuery, q.TopK)
	case q.Limit < 0:
		return fmt.Errorf("%w: negative limit %d", ErrBadQuery, q.Limit)
	}
	// The negated form also rejects NaN coordinates (every NaN comparison is
	// false), which would otherwise silently prune the whole join.
	if r := q.Region; r != nil && !(r.MinX <= r.MaxX && r.MinY <= r.MaxY) {
		return fmt.Errorf("%w: empty region window %+v", ErrBadQuery, *r)
	}
	if q.Weight != nil && q.TopK <= 0 {
		return fmt.Errorf("%w: Weight set without TopK", ErrBadQuery)
	}
	return nil
}

// Matches reports whether one pair satisfies the query's pair-level
// predicates (MaxDiameter, MinDistance, Region). It is exactly the
// post-filter the pushdown is equivalent to; TopK and Limit are set-level
// and not evaluated here.
func (q Query) Matches(p Pair) bool {
	d := p.Diameter()
	if q.MaxDiameter > 0 && d > q.MaxDiameter {
		return false
	}
	if q.MinDistance > 0 && d < q.MinDistance {
		return false
	}
	if q.Region != nil && !q.Region.Contains(p.Center.X, p.Center.Y) {
		return false
	}
	return true
}

func (q Query) algorithm() Algorithm {
	if !q.ForceAlgorithm && q.Algorithm == core.AlgINJ {
		return core.AlgOBJ
	}
	return q.Algorithm
}

// coreOptions compiles the request into executor options.
func (q Query) coreOptions(self bool) core.Options {
	co := core.Options{
		Algorithm:      q.algorithm(),
		SelfJoin:       self,
		Parallelism:    q.Parallelism,
		MaxDiameter:    q.MaxDiameter,
		MinDistance:    q.MinDistance,
		TopK:           q.TopK,
		Limit:          q.Limit,
		PredicateOrder: q.predOrder,
	}
	if q.Region != nil {
		r := q.Region.geom()
		co.Region = &r
	}
	if q.Weight != nil {
		w := q.Weight
		co.Weight = func(pe rtree.PointEntry) float64 {
			return w(Point{X: pe.P.X, Y: pe.P.Y, ID: pe.ID})
		}
	}
	return co
}

// Run computes the constrained ring-constrained join of the datasets of p
// and q, streaming each qualifying pair as the executor confirms it (TopK
// pairs arrive together, in ranking order, when the traversal finishes).
// The returned iterator is single-use; cancelling ctx or breaking out of
// the loop aborts the join promptly. An invalid query yields ErrBadQuery as
// the iterator's first element.
func (e *Engine) Run(ctx context.Context, q, p *Index, qry Query) iter.Seq2[Pair, error] {
	return querySeq(ctx, q, p, qry, false)
}

// RunSelf is Run for the self-join of one dataset; each unordered pair is
// reported once with P.ID < Q.ID.
func (e *Engine) RunSelf(ctx context.Context, ix *Index, qry Query) iter.Seq2[Pair, error] {
	return querySeq(ctx, ix, ix, qry, true)
}

// RunCollect is the materializing form of Run: it runs the query to
// completion under ctx and returns all qualifying pairs plus run
// statistics (exact per-request buffer attribution, as JoinCollect).
func (e *Engine) RunCollect(ctx context.Context, q, p *Index, qry Query) ([]Pair, Stats, error) {
	return runQuery(ctx, q, p, qry, false, nil)
}

// RunSelfCollect is the materializing form of RunSelf.
func (e *Engine) RunSelfCollect(ctx context.Context, ix *Index, qry Query) ([]Pair, Stats, error) {
	return runQuery(ctx, ix, ix, qry, true, nil)
}

// runQuery executes one materializing (or OnPair-streaming) query: the
// single execution path under every public join entry point, legacy and v2.
func runQuery(ctx context.Context, q, p *Index, qry Query, self bool, onPair func(Pair)) ([]Pair, Stats, error) {
	if err := qry.Validate(); err != nil {
		return nil, Stats{}, err
	}
	qry, dec := qry.Resolve(q, p, self)
	if qry.PlanOut != nil {
		*qry.PlanOut = dec
	}
	coreOpts := qry.coreOptions(self)
	coreOpts.Collect = onPair == nil
	if onPair != nil {
		coreOpts.OnPair = func(cp core.Pair) { onPair(fromCorePair(cp)) }
	}
	var rec buffer.TagStats
	tq, tp, release, err := joinViews(q, p, &rec, &coreOpts)
	if err != nil {
		return nil, Stats{}, err
	}
	defer release()
	pairs, st, err := core.JoinContext(ctx, tq, tp, coreOpts)
	if err != nil {
		return nil, Stats{}, err
	}
	var out []Pair
	if coreOpts.Collect {
		out = make([]Pair, len(pairs))
		for i, cp := range pairs {
			out[i] = fromCorePair(cp)
		}
		if qry.SortByDiameter {
			SortPairsByDiameter(out)
		}
	}
	stats := statsFrom(st, &rec)
	if qry.Stats != nil {
		*qry.Stats = stats
	}
	return out, stats, nil
}

// querySeq runs the query in a producer goroutine bridged to the consumer
// through stream.Seq2, so parallel joins (whose workers emit concurrently)
// and sequential joins stream through the same iterator with no goroutine
// outliving the range loop. When qry.Stats is set it is filled with this
// run's exact (tagged) statistics before the iterator returns.
func querySeq(ctx context.Context, q, p *Index, qry Query, self bool) iter.Seq2[Pair, error] {
	if err := qry.Validate(); err != nil {
		return func(yield func(Pair, error) bool) { yield(Pair{}, err) }
	}
	// Resolve eagerly (not in the producer goroutine): PlanOut is filled
	// before the iterator is returned, so the caller may inspect the plan
	// without racing the stream.
	qry, dec := qry.Resolve(q, p, self)
	if qry.PlanOut != nil {
		*qry.PlanOut = dec
	}
	return stream.Seq2(ctx, streamBuffer, func(runCtx context.Context, emit func(Pair)) error {
		coreOpts := qry.coreOptions(self)
		coreOpts.OnPair = func(cp core.Pair) { emit(fromCorePair(cp)) }
		var rec buffer.TagStats
		tq, tp, release, err := joinViews(q, p, &rec, &coreOpts)
		if err != nil {
			return err
		}
		defer release()
		_, st, err := core.JoinContext(runCtx, tq, tp, coreOpts)
		if qry.Stats != nil {
			*qry.Stats = statsFrom(st, &rec)
		}
		return err
	})
}

// joinViews resolves the executor inputs for one traversal: tagged views of
// the two indexes' trees, so every buffer access of this run — and only
// this run — lands in rec, exact under concurrency. Joins over one index
// must see ONE view instance: core compares view identity as the self-join
// safety net.
//
// For a mutable index the view is its pinned epoch's merged base+delta
// read view — the snapshot-isolation point: the pin happens here, at
// traversal start, and release fires when the traversal completes, so
// concurrent mutations and compactions never touch a running query. A
// snapshot with tombstones additionally disables the verification face
// rule, the one traversal rule unsound over possibly-empty masked subtrees
// (every other pruning bound is conservative under inflated MBRs).
func joinViews(q, p *Index, rec *buffer.TagStats, coreOpts *core.Options) (tq, tp core.SpatialIndex, release func(), err error) {
	release = func() {}
	view := func(ix *Index) (core.SpatialIndex, error) {
		if ix.live == nil {
			return ix.tree.Tagged(rec), nil
		}
		snap, err := ix.live.Acquire()
		if err != nil {
			return nil, err
		}
		v, err := snap.View(rec)
		if err != nil {
			snap.Release()
			return nil, err
		}
		if snap.DisableFaceRule() {
			coreOpts.DisableFaceRule = true
		}
		prev := release
		release = func() { snap.Release(); prev() }
		return v, nil
	}
	tq, err = view(q)
	if err != nil {
		release()
		return nil, nil, nil, err
	}
	tp = tq
	if p != q && (p.live != nil || q.live != nil || p.tree != q.tree) {
		tp, err = view(p)
		if err != nil {
			release()
			return nil, nil, nil, err
		}
	}
	return tq, tp, release, nil
}

// statsFrom merges executor statistics with the run's tagged buffer
// counters.
func statsFrom(st core.Stats, rec *buffer.TagStats) Stats {
	r := rec.Stats()
	return Stats{
		Candidates:            st.Candidates,
		Results:               st.Results,
		NodesPruned:           st.NodesPruned,
		BoundKilledCandidates: st.BoundKilledCandidates,
		PageFaults:            r.Misses,
		NodeAccesses:          r.Accesses,
	}
}
