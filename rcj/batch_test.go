package rcj

import (
	"context"
	"math/rand"
	"testing"
)

// TestRunBatchesMatchesRun pins the batch-granular stream: concatenating
// RunBatches' slices reproduces Run's sequential stream exactly, pair for
// pair and in order, for plain, predicate, and TopK queries.
func TestRunBatchesMatchesRun(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(7))
	pts := testPoints(rng, 400, 0)
	ix, err := eng.BuildIndex(pts, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ctx := context.Background()

	for ci, qry := range queryCases() {
		var want []Pair
		for p, err := range eng.RunSelf(ctx, ix, qry) {
			if err != nil {
				t.Fatalf("case %d: run: %v", ci, err)
			}
			want = append(want, p)
		}
		var got []Pair
		var st Stats
		bq := qry
		bq.Stats = &st
		for b, err := range eng.RunSelfBatches(ctx, ix, bq) {
			if err != nil {
				t.Fatalf("case %d: run batches: %v", ci, err)
			}
			if len(b) == 0 {
				t.Fatalf("case %d: empty batch", ci)
			}
			got = append(got, b...)
		}
		if len(got) != len(want) {
			t.Fatalf("case %d: %d batched pairs, want %d", ci, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("case %d pair %d: %+v != %+v", ci, i, got[i], want[i])
			}
		}
		if st.Results != int64(len(got)) {
			t.Fatalf("case %d: stats results %d, emitted %d", ci, st.Results, len(got))
		}
	}

	// Breaking out of the batch iterator cancels the producer cleanly.
	count := 0
	for _, err := range eng.RunSelfBatches(ctx, ix, Query{}) {
		if err != nil {
			t.Fatal(err)
		}
		count++
		if count == 2 {
			break
		}
	}

	// Validation errors surface as the iterator's first element.
	for _, err := range eng.RunSelfBatches(ctx, ix, Query{Limit: -1}) {
		if err == nil {
			t.Fatal("invalid query streamed a batch")
		}
		break
	}
}

// TestBatchEnvelope pins the envelope algebra: the envelope is the loosest
// member, so every member's result is a subset of the envelope's, and
// post-filtering the envelope with each member's Matches reproduces that
// member's own pushdown run.
func TestBatchEnvelope(t *testing.T) {
	region := &Rect{MinX: 1000, MinY: 1000, MaxX: 6000, MaxY: 6000}
	other := &Rect{MinX: 4000, MinY: 4000, MaxX: 9000, MaxY: 9000}
	members := []Query{
		{MaxDiameter: 500, Region: region},
		{MaxDiameter: 900, MinDistance: 200, Region: other},
		{MaxDiameter: 700, MinDistance: 400, Region: region},
	}
	env := BatchEnvelope(members)
	if env.MaxDiameter != 900 {
		t.Fatalf("envelope MaxDiameter = %g, want 900 (max)", env.MaxDiameter)
	}
	if env.MinDistance != 0 {
		t.Fatalf("envelope MinDistance = %g, want 0 (the first member has no floor)", env.MinDistance)
	}
	if e := BatchEnvelope([]Query{{MinDistance: 400}, {MinDistance: 200}}); e.MinDistance != 200 {
		t.Fatalf("envelope MinDistance = %g, want 200 (min of the floors)", e.MinDistance)
	}
	if env.Region == nil || *env.Region != (Rect{MinX: 1000, MinY: 1000, MaxX: 9000, MaxY: 9000}) {
		t.Fatalf("envelope Region = %+v, want union", env.Region)
	}
	// An unbounded member unbounds the diameter; a windowless member drops
	// the window.
	env = BatchEnvelope([]Query{{MaxDiameter: 500}, {}})
	if env.MaxDiameter != 0 || env.Region != nil {
		t.Fatalf("envelope with unconstrained member = %+v", env)
	}

	// Equivalence: envelope + per-member post-filter == member pushdown.
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(9))
	pts := testPoints(rng, 400, 0)
	ix, err := eng.BuildIndex(pts, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ctx := context.Background()

	var envPairs []Pair
	for p, err := range eng.RunSelf(ctx, ix, BatchEnvelope(members)) {
		if err != nil {
			t.Fatal(err)
		}
		envPairs = append(envPairs, p)
	}
	for mi, m := range members {
		var want []Pair
		for p, err := range eng.RunSelf(ctx, ix, m) {
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, p)
		}
		var got []Pair
		for _, p := range envPairs {
			if m.Matches(p) {
				got = append(got, p)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("member %d: filtered envelope has %d pairs, pushdown %d", mi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("member %d pair %d: %+v != %+v", mi, i, got[i], want[i])
			}
		}
	}
}

// TestQueryCanonical pins the cache-key property: equal result-shaping
// fields collide, different ones never do, and the INJ default resolves
// like the executor will.
func TestQueryCanonical(t *testing.T) {
	a := Query{MaxDiameter: 500, TopK: 10}
	b := Query{MaxDiameter: 500, TopK: 10, SortByDiameter: true, Stats: &Stats{}}
	if a.Canonical() != b.Canonical() {
		t.Fatal("presentation-only fields changed the canonical form")
	}
	distinct := []Query{
		{},
		{Algorithm: INJ, ForceAlgorithm: true},
		{MaxDiameter: 500},
		{MaxDiameter: 500.0000001},
		{MinDistance: 500},
		{Region: &Rect{MaxX: 1, MaxY: 1}},
		{Region: &Rect{MaxX: 1, MaxY: 2}},
		{TopK: 10},
		{TopK: 11},
		{Limit: 10},
		{Parallelism: 2},
	}
	seen := map[string]int{}
	for i, q := range distinct {
		k := q.Canonical()
		if j, dup := seen[k]; dup {
			t.Fatalf("queries %d and %d share canonical form %q", j, i, k)
		}
		seen[k] = i
	}
	// The zero query resolves INJ→OBJ like the executor.
	if (Query{}).EffectiveAlgorithm() != OBJ {
		t.Fatal("zero query did not resolve to OBJ")
	}
	if (Query{Algorithm: INJ, ForceAlgorithm: true}).EffectiveAlgorithm() != INJ {
		t.Fatal("forced INJ did not stay INJ")
	}
}
