package rcj

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func randomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: int64(i)}
	}
	return pts
}

func mustIndex(t *testing.T, pts []Point, cfg IndexConfig) *Index {
	t.Helper()
	ix, err := BuildIndex(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func TestBuildIndexValidation(t *testing.T) {
	if _, err := BuildIndex(nil, IndexConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
	dup := []Point{{X: 1, Y: 1, ID: 7}, {X: 2, Y: 2, ID: 7}}
	if _, err := BuildIndex(dup, IndexConfig{}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestJoinBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := randomPoints(rng, 150)
	qs := randomPoints(rng, 120)
	p := mustIndex(t, ps, IndexConfig{})
	q := mustIndex(t, qs, IndexConfig{})

	pairs, stats, err := Join(q, p, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no pairs at all")
	}
	if stats.Results != int64(len(pairs)) {
		t.Fatalf("stats.Results=%d len=%d", stats.Results, len(pairs))
	}
	if stats.NodeAccesses == 0 {
		t.Fatalf("node-access counter empty: %+v", stats)
	}
	// PageFaults may be zero here: the default buffer is unbounded and the
	// build warmed it; the bounded-buffer test below checks fault counting.
	// Center and radius invariants: equidistant from both endpoints.
	for _, pr := range pairs {
		dp := hypot(pr.Center.X-pr.P.X, pr.Center.Y-pr.P.Y)
		dq := hypot(pr.Center.X-pr.Q.X, pr.Center.Y-pr.Q.Y)
		if abs(dp-pr.Radius) > 1e-6 || abs(dq-pr.Radius) > 1e-6 {
			t.Fatalf("center not equidistant: %+v (dp=%g dq=%g r=%g)", pr, dp, dq, pr.Radius)
		}
	}
	// Every algorithm yields the same result set.
	base := keySet(pairs)
	for _, alg := range []Algorithm{INJ, BIJ, OBJ} {
		got, _, err := Join(q, p, JoinOptions{Algorithm: alg, ForceAlgorithm: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sameKeys(base, keySet(got)) {
			t.Fatalf("%v disagrees with default", alg)
		}
	}
}

func keySet(pairs []Pair) map[[2]int64]bool {
	m := make(map[[2]int64]bool, len(pairs))
	for _, p := range pairs {
		m[[2]int64{p.P.ID, p.Q.ID}] = true
	}
	return m
}

func sameKeys(a, b map[[2]int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func hypot(a, b float64) float64 {
	return math.Hypot(a, b)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestSortByDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := mustIndex(t, randomPoints(rng, 100), IndexConfig{})
	q := mustIndex(t, randomPoints(rng, 100), IndexConfig{})
	pairs, _, err := Join(q, p, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(pairs, func(i, j int) bool { return pairs[i].Radius < pairs[j].Radius }) {
		t.Fatal("pairs not sorted by diameter")
	}
	if d := pairs[0].Diameter(); d != 2*pairs[0].Radius {
		t.Fatalf("diameter %g", d)
	}
}

func TestRankPairsByWeight(t *testing.T) {
	pairs := []Pair{
		{P: Point{ID: 1}, Q: Point{ID: 2}, Radius: 5},
		{P: Point{ID: 3}, Q: Point{ID: 4}, Radius: 1},
		{P: Point{ID: 5}, Q: Point{ID: 6}, Radius: 3},
	}
	weights := map[int64]float64{1: 10, 2: 10, 3: 1, 4: 1, 5: 100, 6: 0}
	RankPairsByWeight(pairs, func(p Point) float64 { return weights[p.ID] })
	if pairs[0].P.ID != 5 || pairs[1].P.ID != 1 || pairs[2].P.ID != 3 {
		t.Fatalf("rank order wrong: %+v", pairs)
	}
}

func TestSelfJoinCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := mustIndex(t, randomPoints(rng, 120), IndexConfig{})
	pairs, _, err := SelfJoin(ix, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("self join found nothing")
	}
	for _, p := range pairs {
		if p.P.ID >= p.Q.ID {
			t.Fatalf("non-canonical pair %+v", p)
		}
	}
}

func TestStreamingMode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := mustIndex(t, randomPoints(rng, 80), IndexConfig{})
	q := mustIndex(t, randomPoints(rng, 80), IndexConfig{})
	collected, _, err := Join(q, p, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Pair
	ret, stats, err := Join(q, p, JoinOptions{OnPair: func(pr Pair) { streamed = append(streamed, pr) }})
	if err != nil {
		t.Fatal(err)
	}
	if ret != nil {
		t.Fatal("streaming mode returned a slice")
	}
	if len(streamed) != len(collected) || stats.Results != int64(len(streamed)) {
		t.Fatalf("streamed %d, collected %d, stats %d", len(streamed), len(collected), stats.Results)
	}
}

func TestInsertBuildEqualsBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 200)
	qs := randomPoints(rng, 200)
	bulkP := mustIndex(t, pts, IndexConfig{})
	bulkQ := mustIndex(t, qs, IndexConfig{})
	insP := mustIndex(t, pts, IndexConfig{InsertBuild: true})
	insQ := mustIndex(t, qs, IndexConfig{InsertBuild: true})
	a, _, err := Join(bulkQ, bulkP, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Join(insQ, insP, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(keySet(a), keySet(b)) {
		t.Fatal("insert-built and bulk-loaded indexes disagree")
	}
}

func TestFileBackedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomPoints(rng, 150)
	path := filepath.Join(t.TempDir(), "index.pages")
	ixFile := mustIndex(t, pts, IndexConfig{Path: path})
	ixMem := mustIndex(t, pts, IndexConfig{})
	qs := randomPoints(rng, 100)
	q := mustIndex(t, qs, IndexConfig{})
	a, _, err := Join(q, ixFile, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Join(q, ixMem, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(keySet(a), keySet(b)) {
		t.Fatal("file-backed index disagrees with memory index")
	}
}

func TestBoundedBufferSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 300)
	qs := randomPoints(rng, 300)
	tight := mustIndex(t, pts, IndexConfig{BufferPages: 2})
	loose := mustIndex(t, pts, IndexConfig{})
	q := mustIndex(t, qs, IndexConfig{})
	a, statsTight, err := Join(q, tight, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, statsLoose, err := Join(q, loose, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(keySet(a), keySet(b)) {
		t.Fatal("buffer size changed the result set")
	}
	if statsTight.PageFaults <= statsLoose.PageFaults {
		t.Fatalf("tight buffer should fault more: %d vs %d", statsTight.PageFaults, statsLoose.PageFaults)
	}
}

func TestIndexAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomPoints(rng, 50)
	ix := mustIndex(t, pts, IndexConfig{})
	if ix.Len() != 50 {
		t.Fatalf("Len = %d", ix.Len())
	}
	got, err := ix.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("Points returned %d", len(got))
	}
	nn, err := ix.NearestNeighbor(pts[7].X, pts[7].Y)
	if err != nil {
		t.Fatal(err)
	}
	if nn.ID != pts[7].ID {
		t.Fatalf("NN of a dataset point is itself: got %d", nn.ID)
	}
}

func TestJoinL1Basics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := mustIndex(t, randomPoints(rng, 100), IndexConfig{})
	q := mustIndex(t, randomPoints(rng, 100), IndexConfig{})
	pairs, stats, err := JoinL1(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 || stats.Results != int64(len(pairs)) {
		t.Fatalf("L1 join: %d pairs, stats %+v", len(pairs), stats)
	}
	for _, pr := range pairs {
		dp := abs(pr.Center.X-pr.P.X) + abs(pr.Center.Y-pr.P.Y)
		dq := abs(pr.Center.X-pr.Q.X) + abs(pr.Center.Y-pr.Q.Y)
		if abs(dp-pr.Radius) > 1e-6 || abs(dq-pr.Radius) > 1e-6 {
			t.Fatalf("L1 center not equidistant: %+v", pr)
		}
	}
}

func TestSelfJoinL1(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ix := mustIndex(t, randomPoints(rng, 80), IndexConfig{})
	pairs, _, err := SelfJoinL1(ix)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.P.ID >= p.Q.ID {
			t.Fatalf("non-canonical L1 self pair %+v", p)
		}
	}
}
