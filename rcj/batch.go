package rcj

import (
	"context"
	"iter"
	"math"
	"strconv"
	"strings"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/stream"
)

// EffectiveAlgorithm resolves the algorithm the query will actually run:
// Algorithm verbatim when forced or non-zero, otherwise the INJ default is
// overridden to OBJ (the paper's dominant algorithm). Two queries batch
// together only when they resolve to the same algorithm.
func (q Query) EffectiveAlgorithm() Algorithm { return q.algorithm() }

// BatchEnvelope returns the loosest query covering every member of a batch:
// one traversal of the envelope visits every pair any member wants, so each
// member's exact result is the envelope stream post-filtered with its own
// Matches — sound because every pushdown predicate is proven set-identical
// to post-filtering. Result-shaping fields (TopK, Limit, SortByDiameter,
// Stats) are zeroed: set-level truncation is per-member, handled by the
// demultiplexer. Algorithm, ForceAlgorithm and Parallelism are taken from
// the first member; callers group members so those agree.
func BatchEnvelope(qs []Query) Query {
	if len(qs) == 0 {
		return Query{}
	}
	env := Query{
		Algorithm:      qs[0].Algorithm,
		ForceAlgorithm: qs[0].ForceAlgorithm,
		Parallelism:    qs[0].Parallelism,
		MaxDiameter:    qs[0].MaxDiameter,
		MinDistance:    qs[0].MinDistance,
	}
	var region *Rect
	if qs[0].Region != nil {
		r := *qs[0].Region
		region = &r
	}
	for _, q := range qs[1:] {
		// MaxDiameter: any unbounded member unbounds the envelope; else max.
		if env.MaxDiameter > 0 && (q.MaxDiameter == 0 || q.MaxDiameter > env.MaxDiameter) {
			env.MaxDiameter = q.MaxDiameter
		}
		// MinDistance: any member without a floor drops the envelope's; else min.
		if env.MinDistance > 0 && q.MinDistance < env.MinDistance {
			env.MinDistance = q.MinDistance
		}
		// Region: any member without a window unbounds the envelope; else union.
		if region != nil {
			if q.Region == nil {
				region = nil
			} else {
				region.MinX = math.Min(region.MinX, q.Region.MinX)
				region.MinY = math.Min(region.MinY, q.Region.MinY)
				region.MaxX = math.Max(region.MaxX, q.Region.MaxX)
				region.MaxY = math.Max(region.MaxY, q.Region.MaxY)
			}
		}
	}
	env.Region = region
	return env
}

// Canonical returns a stable textual form of the query's result-shaping
// fields — resolved algorithm, parallelism, predicates, TopK, Limit — for
// use as a cache key: two queries with equal Canonical strings produce the
// same result set over the same index generation. Float predicates are
// rendered by exact bit pattern, so no two distinct bounds collide.
func (q Query) Canonical() string {
	var b strings.Builder
	b.WriteString("alg=")
	b.WriteString(q.algorithm().String())
	b.WriteString(";par=")
	b.WriteString(strconv.Itoa(q.Parallelism))
	b.WriteString(";md=")
	b.WriteString(strconv.FormatUint(math.Float64bits(q.MaxDiameter), 16))
	b.WriteString(";mind=")
	b.WriteString(strconv.FormatUint(math.Float64bits(q.MinDistance), 16))
	b.WriteString(";reg=")
	if r := q.Region; r != nil {
		b.WriteString(strconv.FormatUint(math.Float64bits(r.MinX), 16))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(math.Float64bits(r.MinY), 16))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(math.Float64bits(r.MaxX), 16))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(math.Float64bits(r.MaxY), 16))
	} else {
		b.WriteString("nil")
	}
	b.WriteString(";k=")
	b.WriteString(strconv.Itoa(q.TopK))
	b.WriteString(";lim=")
	b.WriteString(strconv.Itoa(q.Limit))
	if q.Weight != nil {
		// Weight functions are opaque: the marker keeps weighted runs from
		// colliding with the diameter ranking, but two different weight
		// functions still canonicalize alike — weighted queries must not be
		// cached by Canonical alone (the daemon's result cache excludes them).
		b.WriteString(";w=1")
	}
	return b.String()
}

// RunBatches is Run at the executor's leaf granularity: instead of one pair
// per element, the iterator yields the confirmed survivors of each
// verification batch (one slice per TQ leaf under OBJ/BIJ; TopK arrives as
// one final slice in ranking order). Concatenating the slices of a
// sequential run reproduces Run's stream exactly. This is the traversal
// the scheduler's cross-request batching demultiplexes: each member filters
// every slice with its own Query.Matches.
func (e *Engine) RunBatches(ctx context.Context, q, p *Index, qry Query) iter.Seq2[[]Pair, error] {
	return batchSeq(ctx, q, p, qry, false)
}

// RunSelfBatches is RunBatches for the self-join of one dataset.
func (e *Engine) RunSelfBatches(ctx context.Context, ix *Index, qry Query) iter.Seq2[[]Pair, error] {
	return batchSeq(ctx, ix, ix, qry, true)
}

// batchSeq is querySeq with batch-granular emission: the producer converts
// each core batch once and hands the slice over the stream bridge, so the
// whole-batch cost is one channel send instead of one per pair.
func batchSeq(ctx context.Context, q, p *Index, qry Query, self bool) iter.Seq2[[]Pair, error] {
	if err := qry.Validate(); err != nil {
		return func(yield func([]Pair, error) bool) { yield(nil, err) }
	}
	qry, dec := qry.Resolve(q, p, self)
	if qry.PlanOut != nil {
		*qry.PlanOut = dec
	}
	return stream.Seq2(ctx, streamBuffer, func(runCtx context.Context, emit func([]Pair)) error {
		coreOpts := qry.coreOptions(self)
		coreOpts.OnBatch = func(cb []core.Pair) {
			out := make([]Pair, len(cb))
			for i, cp := range cb {
				out[i] = fromCorePair(cp)
			}
			emit(out)
		}
		// One shared traversal pins ONE snapshot for every batch member —
		// each member was admitted before this point, so the snapshot is
		// current within every member's request window.
		var rec buffer.TagStats
		tq, tp, release, err := joinViews(q, p, &rec, &coreOpts)
		if err != nil {
			return err
		}
		defer release()
		_, st, err := core.JoinContext(runCtx, tq, tp, coreOpts)
		if qry.Stats != nil {
			*qry.Stats = statsFrom(st, &rec)
		}
		return err
	})
}
