package rcj

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// serveDir serves dir over an httptest file server, with an optional
// per-request latency so prefetch has round trips worth hiding.
func serveDir(t *testing.T, dir string, latency time.Duration) *httptest.Server {
	t.Helper()
	fs := http.FileServer(http.Dir(dir))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if latency > 0 {
			time.Sleep(latency)
		}
		fs.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestOpenIndexURLEndToEnd is the tentpole acceptance test: Engine.OpenIndex
// on an httptest URL yields joins identical to the file backend over the
// same .rcjx, with every fetched page checksum-verified and prefetch hits
// visible in the pool stats.
func TestOpenIndexURLEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := randomPoints(rng, 500)
	qs := randomPoints(rng, 450)
	dir := t.TempDir()
	build := NewEngine(EngineConfig{})
	for name, pts := range map[string][]Point{"p.rcjx": ps, "q.rcjx": qs} {
		ix, err := build.BuildIndex(pts, IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Save(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
		ix.Close()
	}

	ctx := context.Background()
	fileEng := NewEngine(EngineConfig{BufferPages: 256})
	fileP, err := fileEng.OpenIndex(filepath.Join(dir, "p.rcjx"), IndexConfig{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	defer fileP.Close()
	fileQ, err := fileEng.OpenIndex(filepath.Join(dir, "q.rcjx"), IndexConfig{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	defer fileQ.Close()
	wantPairs, _, err := fileEng.JoinCollect(ctx, fileQ, fileP, JoinOptions{})
	want := collectSorted(t, wantPairs, Stats{}, err)

	srv := serveDir(t, dir, 200*time.Microsecond)
	eng := NewEngine(EngineConfig{BufferPages: 256})
	ixP, err := eng.OpenIndex(srv.URL+"/p.rcjx", IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixP.Close()
	ixQ, err := eng.OpenIndex(srv.URL+"/q.rcjx", IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixQ.Close()
	if ixP.Backend() != BackendHTTP {
		t.Fatalf("Backend() = %v, want http", ixP.Backend())
	}
	if ixP.Len() != len(ps) || ixQ.Len() != len(qs) {
		t.Fatalf("remote sizes %d/%d, want %d/%d", ixP.Len(), ixQ.Len(), len(ps), len(qs))
	}

	gotPairs, st, err := eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{})
	got := collectSorted(t, gotPairs, st, err)
	equalPairs(t, "remote vs file", got, want)

	rs, ok := ixP.RemoteStats()
	if !ok || rs.Fetches == 0 || rs.BytesFetched == 0 {
		t.Fatalf("remote stats = %+v, ok=%v; want fetches", rs, ok)
	}
	if _, ok := ixP.PrefetchStats(); !ok {
		t.Fatal("remote index has no prefetcher")
	}
	pf, _ := ixP.PrefetchStats()
	qf, _ := ixQ.PrefetchStats()
	if pf.Offered+qf.Offered == 0 {
		t.Fatalf("no readahead offered: %+v / %+v", pf, qf)
	}
	if hits := eng.BufferStats().PrefetchHits; hits == 0 {
		t.Fatalf("no prefetch hits in pool stats (prefetch %+v / %+v)", pf, qf)
	}
}

// TestOpenIndexURLNoPrefetch covers the PrefetchWorkers=-1 escape hatch and
// a second engine-less OpenIndex over the same URL.
func TestOpenIndexURLNoPrefetch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dir := t.TempDir()
	ix := mustIndex(t, randomPoints(rng, 200), IndexConfig{})
	if err := ix.Save(filepath.Join(dir, "ix.rcjx")); err != nil {
		t.Fatal(err)
	}
	srv := serveDir(t, dir, 0)
	re, err := OpenIndex(srv.URL+"/ix.rcjx", IndexConfig{PrefetchWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.PrefetchStats(); ok {
		t.Fatal("prefetcher running despite PrefetchWorkers=-1")
	}
	a, _, err := SelfJoin(ix, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SelfJoin(re, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	equalPairs(t, "self", b, a)
}

// TestOpenIndexHTTPBackendWantsURL pins the config error for BackendHTTP
// with a local path.
func TestOpenIndexHTTPBackendWantsURL(t *testing.T) {
	if _, err := OpenIndex("/tmp/not-a-url.rcjx", IndexConfig{Backend: BackendHTTP}); err == nil {
		t.Fatal("BackendHTTP with a local path accepted")
	}
}

// goldenV1Points regenerates the deterministic pointset the committed
// testdata/golden_v1.rcjx fixture was built from (seed 7, n=250). The
// fixture's tree shape is frozen at generation time; the test compares join
// *results*, which depend only on the points, so it stays valid even if the
// build algorithm changes.
func goldenV1Points() []Point {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 250)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: int64(i)}
	}
	return pts
}

// TestGoldenV1Fixture is the backward-compat gate: a committed format-v1
// index (no page checksum table) must keep opening across every local
// backend — and over HTTP — and join identically to a fresh build of the
// same points.
func TestGoldenV1Fixture(t *testing.T) {
	const golden = "testdata/golden_v1.rcjx"
	if !IsIndexFile(golden) {
		t.Fatal("IsIndexFile(golden v1) = false")
	}
	fresh := mustIndex(t, goldenV1Points(), IndexConfig{})
	wantPairs, _, err := SelfJoin(fresh, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range saveBackends() {
		t.Run(be.String(), func(t *testing.T) {
			ix, err := OpenIndex(golden, IndexConfig{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			got, _, err := SelfJoin(ix, JoinOptions{SortByDiameter: true})
			if err != nil {
				t.Fatal(err)
			}
			equalPairs(t, "golden v1 "+be.String(), got, wantPairs)
		})
	}
	t.Run("http", func(t *testing.T) {
		srv := serveDir(t, "testdata", 0)
		ix, err := OpenIndex(srv.URL+"/golden_v1.rcjx", IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		got, _, err := SelfJoin(ix, JoinOptions{SortByDiameter: true})
		if err != nil {
			t.Fatal(err)
		}
		equalPairs(t, "golden v1 http", got, wantPairs)
	})
}

// TestSaveRoundTripByteIdentical checks a v2-written index round-trips
// byte-identically through save → open → save on every local backend, and
// that the join over the reopened copy matches the original.
func TestSaveRoundTripByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randomPoints(rng, 300)
	ix := mustIndex(t, pts, IndexConfig{})
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.rcjx")
	if err := ix.Save(orig); err != nil {
		t.Fatal(err)
	}
	origBytes, err := os.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs, _, err := SelfJoin(ix, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range saveBackends() {
		t.Run(be.String(), func(t *testing.T) {
			re, err := OpenIndex(orig, IndexConfig{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			resaved := filepath.Join(dir, "resaved-"+be.String()+".rcjx")
			if err := re.Save(resaved); err != nil {
				t.Fatal(err)
			}
			resavedBytes, err := os.ReadFile(resaved)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(origBytes, resavedBytes) {
				t.Fatalf("%s: re-saved file differs from original (%d vs %d bytes)", be, len(resavedBytes), len(origBytes))
			}
			got, _, err := SelfJoin(re, JoinOptions{SortByDiameter: true})
			if err != nil {
				t.Fatal(err)
			}
			equalPairs(t, be.String(), got, wantPairs)
		})
	}
}
