package rcj

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Backend selects how a saved index's pages are accessed after OpenIndex:
// loaded fully into memory (BackendMem, the default), served by positional
// file reads (BackendFile), memory-mapped read-only (BackendMmap,
// unix-only), or fetched over HTTP range requests (BackendHTTP). See
// IndexConfig.Backend.
type Backend = storage.Backend

// The available pager backends.
const (
	BackendMem  = storage.BackendMem
	BackendFile = storage.BackendFile
	BackendMmap = storage.BackendMmap
	BackendHTTP = storage.BackendHTTP
)

// HTTPConfig tunes the remote pager of an http-backend index: client,
// retry bound, backoff. The zero value selects the serving defaults.
type HTTPConfig = storage.HTTPPagerConfig

// RemoteStats are the transfer counters of an http-backend index.
type RemoteStats = storage.RemoteStats

// ErrOriginChanged surfaces from joins over a remote index whose origin
// started serving a different file mid-session (ETag/Last-Modified
// mismatch): the index must be reopened to pick up the new build.
var ErrOriginChanged = storage.ErrOriginChanged

// PrefetchStats are the readahead counters of an index with async prefetch.
type PrefetchStats = buffer.PrefetchStats

// DefaultPrefetchWorkers is the readahead worker count for http-backend
// indexes when IndexConfig.PrefetchWorkers is zero: enough concurrent range
// requests to hide round trips behind the join's CPU work without hammering
// the origin. Measured on the 1-CPU dev box at 1ms injected RTT, cold-join
// wall clock flattens at 8 (150ms vs 219ms unprefetched; 16 buys nothing).
const DefaultPrefetchWorkers = 8

// ParseBackend parses a flag-style backend name ("mem", "file", "mmap",
// "http").
func ParseBackend(s string) (Backend, error) { return storage.ParseBackend(s) }

// IsIndexFile reports whether the file at path is a saved index (starts with
// the index magic) rather than raw point data. Both format versions match.
func IsIndexFile(path string) bool { return storage.SniffIndexFile(path) }

// IsIndexURL reports whether src names a remote index (an http:// or
// https:// URL) rather than a local path.
func IsIndexURL(src string) bool { return storage.IsIndexURL(src) }

// Save durably writes the index to path in the versioned index file format:
// a checksummed superblock (page size, root page, entry count, dataset MBR)
// followed by the raw page image and a per-page CRC-32 table (format v2).
// The file is written atomically (temp + rename). A saved index reopens via
// OpenIndex or Engine.OpenIndex in any later process, skipping the build
// entirely; the conventional extension is ".rcjx".
func (ix *Index) Save(path string) error { return ix.save(path, 0) }

// SavePacked writes the index at path in the packed format (v3): leaf pages
// delta/varint-compressed behind a page directory, typically around half the
// v2 size on bulk-loaded indexes. The file reopens on every backend — mem,
// file, mmap, and over HTTP, where each buffer-pool miss then fetches the
// compressed blob instead of a full page — and joins byte-identically to the
// v2 form. Readers from before format v3 reject it (ErrBadVersion); Save
// keeps emitting v2 for them.
func (ix *Index) SavePacked(path string) error { return ix.save(path, storage.FormatVersion3) }

func (ix *Index) save(path string, version int) error {
	if ix.live != nil {
		return fmt.Errorf("rcj: save is not supported on mutable indexes; compaction persists generations (see MutableConfig.GenerationBase)")
	}
	meta := ix.tree.Meta()
	mbr, err := ix.tree.RootMBR()
	if err != nil {
		return fmt.Errorf("rcj: save index: %w", err)
	}
	sb := storage.Superblock{
		Version:  version,
		PageSize: ix.tree.PageSize(),
		NumPages: ix.pager.NumPages(),
		Root:     meta.Root,
		Height:   meta.Height,
		Count:    int64(meta.Size),
		MBR:      [4]float64{mbr.MinX, mbr.MinY, mbr.MaxX, mbr.MaxY},
	}
	if err := storage.WriteIndexFile(path, sb, ix.pager); err != nil {
		return fmt.Errorf("rcj: save index: %w", err)
	}
	return nil
}

// OpenIndex reopens an index previously written by Save, with a private
// buffer pool (the OpenIndex analogue of BuildIndex). src is a local path or
// an http(s) URL. cfg.Backend picks the page substrate; cfg.PageSize, when
// nonzero, must match the file's page size (storage.ErrPageSizeMismatch
// otherwise). cfg.InsertBuild and cfg.Path are ignored. Corrupt, truncated,
// or foreign files fail with the typed errors in package storage
// (ErrBadMagic, ErrBadChecksum, ErrTruncated, ...).
func OpenIndex(src string, cfg IndexConfig) (*Index, error) {
	capacity := cfg.BufferPages
	if capacity <= 0 {
		capacity = -1
	}
	return openIndex(src, cfg, buffer.NewPool(capacity), 0, false)
}

// OpenIndex reopens an index previously written by Save and attaches it to
// the engine's shared buffer pool under a fresh owner id, ready to serve
// concurrent joins alongside indexes the engine built itself. This is the
// cold-start path: one long-lived Engine serving joins over indexes it never
// built. src may be a local path or an http(s) URL — a remote index fetches
// pages by HTTP range request, verifies each against the format's per-page
// checksum table, and hides round trips behind async readahead. See the
// package-level OpenIndex for cfg semantics.
func (e *Engine) OpenIndex(src string, cfg IndexConfig) (*Index, error) {
	ix, err := openIndex(src, cfg, e.pool, e.nextOwner.Add(1), true)
	if err != nil {
		return nil, err
	}
	if e.nodeCache != nil {
		// Opened indexes are immutable, so decoded nodes can be cached across
		// buffer evictions under a generation retired when the index closes.
		ix.nodeCache = e.nodeCache
		ix.cacheOwner = e.nodeCache.NewOwner()
		ix.tree.SetNodeCache(ix.nodeCache, ix.cacheOwner)
	}
	return ix, nil
}

// openIndex is the shared reopen path: validate the file (or URL), stand up
// the chosen pager backend, and reattach a tree to the page image without
// touching a single point. Remote opens additionally start the async
// prefetcher.
func openIndex(src string, cfg IndexConfig, pool *buffer.Pool, owner uint32, shared bool) (*Index, error) {
	var (
		pager   storage.Pager
		sb      storage.Superblock
		remote  *storage.HTTPPager
		backend = cfg.Backend
		err     error
	)
	if storage.IsIndexURL(src) || cfg.Backend == storage.BackendHTTP {
		if !storage.IsIndexURL(src) {
			return nil, fmt.Errorf("rcj: open index %s: http backend wants an http(s) URL", src)
		}
		backend = storage.BackendHTTP
		remote, sb, err = storage.OpenIndexURL(src, cfg.HTTP)
		if err != nil {
			return nil, fmt.Errorf("rcj: open index %s: %w", src, err)
		}
		pager = remote
	} else {
		pager, sb, err = storage.OpenIndexFile(src, cfg.Backend)
		if err != nil {
			return nil, fmt.Errorf("rcj: open index %s: %w", src, err)
		}
	}
	if cfg.PageSize > 0 && cfg.PageSize != sb.PageSize {
		pager.Close()
		return nil, fmt.Errorf("rcj: open index %s: %w: file has %d, config wants %d",
			src, storage.ErrPageSizeMismatch, sb.PageSize, cfg.PageSize)
	}
	tree, err := rtree.Open(pager, pool, rtree.Config{PageSize: sb.PageSize, Owner: owner}, rtree.Meta{
		Root:   sb.Root,
		Height: sb.Height,
		Size:   int(sb.Count),
	})
	if err != nil {
		pager.Close()
		return nil, fmt.Errorf("rcj: open index %s: %w", src, err)
	}
	// The superblock's MBR must agree bit-for-bit with the root page: both
	// derive from the same node encoding, so any difference means the pages
	// and metadata are from different builds.
	mbr, err := tree.RootMBR()
	if err != nil {
		pager.Close()
		return nil, fmt.Errorf("rcj: open index %s: %w", src, err)
	}
	if (geom.Rect{MinX: sb.MBR[0], MinY: sb.MBR[1], MaxX: sb.MBR[2], MaxY: sb.MBR[3]}) != mbr {
		pager.Close()
		return nil, fmt.Errorf("rcj: open index %s: %w: superblock MBR %v != root MBR %+v",
			src, storage.ErrCorrupt, sb.MBR, mbr)
	}
	ix := &Index{tree: tree, pager: pager, pool: pool, pts: int(sb.Count), owner: owner, shared: shared,
		backend: backend, remote: remote}
	if remote != nil && cfg.PrefetchWorkers >= 0 {
		workers := cfg.PrefetchWorkers
		if workers == 0 {
			workers = DefaultPrefetchWorkers
		}
		ix.prefetch = buffer.NewPrefetcher(pool, workers, 0)
		tree.SetPrefetcher(ix.prefetch)
	}
	return ix, nil
}
