package rcj

import (
	"context"
	"iter"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Engine is a long-lived query engine serving many concurrent
// ring-constrained joins over immutable indexes. All indexes built through
// Engine.BuildIndex share the engine's buffer pool — the paper's setting,
// where both join inputs compete for one memory budget — which is sharded
// over independently-locked LRU partitions so concurrent joins do not
// serialize on a single mutex.
//
// Typical service use:
//
//	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 4096})
//	restaurants, _ := eng.BuildIndex(pointsP, rcj.IndexConfig{})
//	residences, _ := eng.BuildIndex(pointsQ, rcj.IndexConfig{})
//	for pair, err := range eng.Join(ctx, residences, restaurants, rcj.JoinOptions{}) {
//		if err != nil { ... }
//		serve(pair)
//	}
//
// The iterator streams pairs as the join confirms them; cancelling ctx (or
// breaking out of the loop) aborts the join promptly without leaking
// goroutines. Engine methods are safe for concurrent use; indexes are
// immutable after build and may be shared by any number of joins.
type Engine struct {
	pageSize  int
	pool      *buffer.Pool
	nodeCache *rtree.NodeCache // second-level decoded-node cache; nil = off
	nextOwner atomic.Uint32
}

// EngineConfig sizes an Engine.
type EngineConfig struct {
	// PageSize is the page size of indexes built on this engine (default
	// 1024, the paper's setting).
	PageSize int
	// BufferPages bounds the shared LRU buffer in pages; <= 0 means
	// unbounded (everything cached).
	BufferPages int
	// BufferShards sets the number of independently-locked LRU shards the
	// buffer is split into. 0 picks a power of two covering GOMAXPROCS; 1
	// gives the single-lock pool with exact global LRU (the deterministic
	// choice for experiments).
	BufferShards int
	// NodeCachePages, when > 0, adds a second-level cache of that many
	// decoded nodes shared by all indexes the engine opens from immutable
	// files (Engine.OpenIndex). A buffer-pool miss still counts as a page
	// fault — the paper's metric is untouched — but is served from the
	// already-decoded node instead of re-reading and re-decoding the page
	// (over the http backend: instead of another range request). Entries are
	// invalidated wholesale when their index closes. Indexes the engine
	// builds itself are never cached (they are mutable during build).
	NodeCachePages int
}

// NewEngine returns an engine with an empty shared buffer pool.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.PageSize <= 0 {
		cfg.PageSize = storage.DefaultPageSize
	}
	capacity := cfg.BufferPages
	if capacity <= 0 {
		capacity = -1
	}
	return &Engine{
		pageSize:  cfg.PageSize,
		pool:      buffer.NewShardedPool(capacity, cfg.BufferShards),
		nodeCache: rtree.NewNodeCache(cfg.NodeCachePages),
	}
}

// NodeCacheStats returns the second-level decoded-node cache's cumulative
// hit/miss counters (zeros when the cache is disabled).
func (e *Engine) NodeCacheStats() (hits, misses int64) {
	if e.nodeCache == nil {
		return 0, 0
	}
	return e.nodeCache.Stats()
}

// BuildIndex indexes the points in an R*-tree attached to the engine's
// shared buffer pool under a fresh owner id. cfg.BufferPages is ignored
// (the engine's buffer is shared); cfg.PageSize defaults to the engine's.
func (e *Engine) BuildIndex(points []Point, cfg IndexConfig) (*Index, error) {
	if cfg.PageSize <= 0 {
		cfg.PageSize = e.pageSize
	}
	return buildIndex(points, cfg, e.pool, e.nextOwner.Add(1), true)
}

// BufferStats returns the shared pool's cumulative access counters, summed
// exactly over its shards.
func (e *Engine) BufferStats() buffer.Stats { return e.pool.Stats() }

// BufferShards returns the number of LRU shards of the shared pool.
func (e *Engine) BufferShards() int { return e.pool.Shards() }

// streamBuffer is the channel depth between the join workers and the
// consuming iterator: deep enough to decouple bursts, small enough that a
// cancelled consumer stops the producer within a leaf or two.
const streamBuffer = 64

// Join computes the ring-constrained join of the datasets of p and q,
// streaming each result pair as the join confirms it. The returned iterator
// is single-use. Cancelling ctx aborts the join; the iterator then yields
// the context's error. Breaking out of the loop early also aborts the join
// and releases its goroutines. JoinOptions.SortByDiameter and OnPair are
// meaningless in streaming mode and ignored; use JoinCollect for a sorted
// slice.
func (e *Engine) Join(ctx context.Context, q, p *Index, opts JoinOptions) iter.Seq2[Pair, error] {
	return joinSeq(ctx, q, p, opts, false)
}

// SelfJoin streams the ring-constrained self-join of one dataset, each
// unordered pair reported once with P.ID < Q.ID.
func (e *Engine) SelfJoin(ctx context.Context, ix *Index, opts JoinOptions) iter.Seq2[Pair, error] {
	return joinSeq(ctx, ix, ix, opts, true)
}

// JoinCollect is the materializing convenience wrapper around Join,
// preserving the signature of the package-level rcj.Join: it runs the join
// to completion under ctx and returns all pairs plus run statistics. The
// buffer counters in Stats are attributed to this join exactly via
// per-request access tagging, even while other joins run concurrently on
// the shared pool.
func (e *Engine) JoinCollect(ctx context.Context, q, p *Index, opts JoinOptions) ([]Pair, Stats, error) {
	return runJoin(ctx, q, p, opts, false)
}

// SelfJoinCollect is the materializing wrapper around SelfJoin.
func (e *Engine) SelfJoinCollect(ctx context.Context, ix *Index, opts JoinOptions) ([]Pair, Stats, error) {
	return runJoin(ctx, ix, ix, opts, true)
}

// Collect drains a streaming join into a slice, stopping at the first
// error. It is the bridge from the iterator form back to today's
// slice-returning form: for any join, Collect(eng.Join(...)) returns
// exactly the pairs eng.JoinCollect(...) does (in unspecified order when
// parallel).
func Collect(seq iter.Seq2[Pair, error]) ([]Pair, error) {
	var out []Pair
	for pr, err := range seq {
		if err != nil {
			return out, err
		}
		out = append(out, pr)
	}
	return out, nil
}

// joinSeq bridges the v1 streaming entry points onto the v2 query executor.
func joinSeq(ctx context.Context, q, p *Index, opts JoinOptions, self bool) iter.Seq2[Pair, error] {
	return querySeq(ctx, q, p, opts.query(), self)
}
