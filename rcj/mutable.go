package rcj

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/live"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// ErrImmutableIndex is returned by mutation methods on an ordinary
// (immutable) index. Only indexes opened with OpenMutableIndex or built
// with NewMutableIndex accept Insert/Delete.
var ErrImmutableIndex = errors.New("rcj: index is immutable")

// Typed live-mutation errors, re-exported from the epoch layer so callers
// can match them without importing internals.
var (
	// ErrDuplicateID rejects an insert whose ID is already indexed.
	ErrDuplicateID = live.ErrDuplicateID
	// ErrUnknownID rejects a delete of an ID that is not indexed.
	ErrUnknownID = live.ErrUnknownID
)

// MutableConfig parameterizes a live (mutable) index.
type MutableConfig struct {
	// Index configures the sealed base: backend, page size, HTTP tuning
	// (IndexConfig semantics). Used by OpenMutableIndex to open the base and
	// by every compaction to build new generations.
	Index IndexConfig
	// CompactEvery triggers a background compaction once the in-memory
	// delta point count plus tombstone count reaches it; 0 selects
	// live.DefaultCompactEvery, negative disables auto-compaction
	// (Index.Compact still works).
	CompactEvery int
	// GenerationBase, when non-empty, persists each compacted generation as
	// storage.GenerationPath(GenerationBase, seq) — ".g<seq>" inserted
	// before the extension. OpenMutableIndex defaults it to the source
	// path; NewMutableIndex defaults to memory-only generations.
	GenerationBase string
	// KeepGenerations, when > 0, prunes all but the newest that many
	// on-disk generation files after each compaction; 0 keeps everything.
	KeepGenerations int
	// OnCompactError, when non-nil, observes background compaction
	// failures. The index keeps serving its current epoch regardless.
	OnCompactError func(error)
}

// LiveStats is a point-in-time summary of a mutable index's epoch state.
type LiveStats struct {
	// Seq is the current epoch sequence, bumped by every applied mutation
	// batch and every compaction. Combined with the server's per-load
	// generation it keys result-cache entries, so cached results never
	// survive a mutation.
	Seq uint64
	// Points is the current live point count.
	Points int
	// BasePoints / DeltaPoints / Tombstones decompose it: points served
	// from the sealed base, points only in the in-memory delta, and base
	// points masked out by deletion.
	BasePoints  int
	DeltaPoints int
	Tombstones  int
	// Generation is the path of the newest sealed generation file ("" when
	// generations are memory-only), holding GenerationPoints points.
	Generation       string
	GenerationPoints int
	// Cumulative counters.
	Inserts         int64
	Deletes         int64
	Batches         int64
	Compactions     int64
	CompactFailures int64
	CompactSeconds  float64
	LastCompactSecs float64
	ShedFeeds       int64
}

// OpenMutableIndex opens a saved index as the sealed base of a live index:
// reads merge the base with an in-memory delta, Insert/Delete apply in
// atomic batches, and a background compactor seals delta+base into new
// ".g<seq>" generations next to src once the delta grows past
// cfg.CompactEvery. Queries are snapshot-isolated: each traversal pins the
// epoch current at its start and is never affected by concurrent mutations
// or compactions.
func (e *Engine) OpenMutableIndex(src string, cfg MutableConfig) (*Index, error) {
	base, err := e.OpenIndex(src, cfg.Index)
	if err != nil {
		return nil, err
	}
	genBase := cfg.GenerationBase
	if genBase == "" && !IsIndexURL(src) {
		genBase = src
	}
	lx, err := live.New(
		live.Base{Tree: base.tree, Count: base.pts, Path: src, Close: base.Close},
		e.liveConfig(cfg, genBase),
	)
	if err != nil {
		base.Close()
		return nil, err
	}
	return &Index{live: lx, backend: base.backend}, nil
}

// NewMutableIndex builds a live index whose initial base holds points
// (which may be empty: an index born from nothing but inserts). Sealed
// generations stay in memory unless cfg.GenerationBase is set.
func (e *Engine) NewMutableIndex(points []Point, cfg MutableConfig) (*Index, error) {
	var base live.Base
	if len(points) > 0 {
		ixCfg := cfg.Index
		if ixCfg.PageSize <= 0 {
			ixCfg.PageSize = e.pageSize
		}
		ixCfg.Path = ""
		b, err := buildIndex(points, ixCfg, e.pool, e.nextOwner.Add(1), true)
		if err != nil {
			return nil, err
		}
		base = live.Base{Tree: b.tree, Count: b.pts, Close: b.Close}
	}
	lx, err := live.New(base, e.liveConfig(cfg, cfg.GenerationBase))
	if err != nil {
		if base.Close != nil {
			base.Close()
		}
		return nil, err
	}
	return &Index{live: lx, backend: storage.BackendMem}, nil
}

// liveConfig assembles the epoch-layer configuration, binding compaction's
// seal step to this engine's builder and the generation naming scheme.
func (e *Engine) liveConfig(cfg MutableConfig, genBase string) live.Config {
	pageSize := cfg.Index.PageSize
	if pageSize <= 0 {
		pageSize = e.pageSize
	}
	return live.Config{
		PageSize:       pageSize,
		CompactEvery:   cfg.CompactEvery,
		OnCompactError: cfg.OnCompactError,
		Seal: func(entries []rtree.PointEntry, seq uint64) (live.Base, error) {
			pts := make([]Point, len(entries))
			for i, en := range entries {
				pts[i] = Point{X: en.P.X, Y: en.P.Y, ID: en.ID}
			}
			// The entries arrive sorted by ID, and buildIndex's STR pack is
			// deterministic for a fixed input order — so this build, and a
			// cold rcjjoin build over the ID-sorted dumped points, produce
			// byte-identical trees (and identical saved generations).
			sealed, err := buildIndex(pts, IndexConfig{PageSize: pageSize}, e.pool, e.nextOwner.Add(1), true)
			if err != nil {
				return live.Base{}, err
			}
			path := ""
			if genBase != "" {
				path = storage.GenerationPath(genBase, seq)
				if err := sealed.Save(path); err != nil {
					sealed.Close()
					return live.Base{}, err
				}
				if cfg.KeepGenerations > 0 {
					// Pruning only removes older generation files; serving
					// epochs read from memory, so no reader loses its pages.
					if _, err := storage.PruneGenerations(genBase, cfg.KeepGenerations); err != nil {
						sealed.Close()
						return live.Base{}, fmt.Errorf("prune generations: %w", err)
					}
				}
			}
			return live.Base{Tree: sealed.tree, Count: sealed.pts, Path: path, Close: sealed.Close}, nil
		},
	}
}

// Mutable reports whether the index accepts Insert/Delete.
func (ix *Index) Mutable() bool { return ix.live != nil }

// Insert adds points to a mutable index as one atomic batch, returning the
// new epoch sequence. A duplicate ID rejects the whole batch.
func (ix *Index) Insert(points ...Point) (uint64, error) {
	return ix.ApplyBatch(points, nil)
}

// Delete removes points by ID from a mutable index as one atomic batch,
// returning the new epoch sequence. An unknown ID rejects the whole batch.
func (ix *Index) Delete(ids ...int64) (uint64, error) {
	return ix.ApplyBatch(nil, ids)
}

// ApplyBatch applies inserts and deletes as one atomic batch: either every
// mutation lands in one new epoch, or none does. Running queries keep their
// pinned snapshots; queries started after ApplyBatch returns see the full
// batch.
func (ix *Index) ApplyBatch(ins []Point, del []int64) (uint64, error) {
	if ix.live == nil {
		return 0, ErrImmutableIndex
	}
	entries := make([]rtree.PointEntry, len(ins))
	for i, p := range ins {
		entries[i] = rtree.PointEntry{P: geom.Point{X: p.X, Y: p.Y}, ID: p.ID}
	}
	return ix.live.Apply(entries, del)
}

// Compact synchronously seals the current point set into a new base
// generation (no-op when there is nothing to compact). Concurrent queries
// finish on their snapshots; the old generation is closed once its last
// reader drains.
func (ix *Index) Compact() error {
	if ix.live == nil {
		return ErrImmutableIndex
	}
	return ix.live.Compact()
}

// Epoch returns the current epoch sequence of a mutable index (0 for
// immutable indexes, whose state never changes).
func (ix *Index) Epoch() uint64 {
	if ix.live == nil {
		return 0
	}
	return ix.live.Stats().Seq
}

// LiveStats returns the epoch-state summary of a mutable index, and whether
// the index is mutable at all.
func (ix *Index) LiveStats() (LiveStats, bool) {
	if ix.live == nil {
		return LiveStats{}, false
	}
	s := ix.live.Stats()
	return LiveStats{
		Seq:              s.Seq,
		Points:           s.Points,
		BasePoints:       s.BasePoints,
		DeltaPoints:      s.DeltaPoints,
		Tombstones:       s.Tombstones,
		Generation:       s.Generation,
		GenerationPoints: s.GenerationPoints,
		Inserts:          s.Inserts,
		Deletes:          s.Deletes,
		Batches:          s.Batches,
		Compactions:      s.Compactions,
		CompactFailures:  s.CompactFailures,
		CompactSeconds:   s.CompactSeconds,
		LastCompactSecs:  s.LastCompactSecs,
		ShedFeeds:        s.ShedFeeds,
	}, true
}
