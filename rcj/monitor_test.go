package rcj

import (
	"math/rand"
	"testing"
)

func TestMonitorTracksJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	ps := randomPoints(rng, 100)
	qs := randomPoints(rng, 100)
	ixP := mustIndex(t, ps, IndexConfig{})
	ixQ := mustIndex(t, qs, IndexConfig{})
	mo, err := NewMonitor(ixQ, ixP)
	if err != nil {
		t.Fatal(err)
	}
	baseline, _, err := Join(ixQ, ixP, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mo.Len() != len(baseline) {
		t.Fatalf("initial monitor %d pairs, join %d", mo.Len(), len(baseline))
	}

	// Stream in 30 new points on both sides; verify against a fresh join
	// over the union at the end.
	extraP := make([]Point, 15)
	extraQ := make([]Point, 15)
	for i := range extraP {
		extraP[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: int64(1000 + i)}
		extraQ[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: int64(2000 + i)}
	}
	for i := range extraP {
		if _, _, err := mo.AddP(extraP[i]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := mo.AddQ(extraQ[i]); err != nil {
			t.Fatal(err)
		}
	}
	freshP := mustIndex(t, append(append([]Point(nil), ps...), extraP...), IndexConfig{})
	freshQ := mustIndex(t, append(append([]Point(nil), qs...), extraQ...), IndexConfig{})
	want, _, err := Join(freshQ, freshP, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(keySet(want), keySet(mo.Pairs())) {
		t.Fatalf("monitor diverged: %d pairs vs %d", mo.Len(), len(want))
	}
}

func TestSelfMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randomPoints(rng, 80)
	ix := mustIndex(t, pts, IndexConfig{})
	mo, err := NewSelfMonitor(ix)
	if err != nil {
		t.Fatal(err)
	}
	extra := make([]Point, 20)
	for i := range extra {
		extra[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: int64(500 + i)}
		if _, _, err := mo.AddP(extra[i]); err != nil {
			t.Fatal(err)
		}
	}
	fresh := mustIndex(t, append(append([]Point(nil), pts...), extra...), IndexConfig{})
	want, _, err := SelfJoin(fresh, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(keySet(want), keySet(mo.Pairs())) {
		t.Fatalf("self monitor diverged: %d vs %d", mo.Len(), len(want))
	}
	for _, p := range mo.Pairs() {
		if p.P.ID >= p.Q.ID {
			t.Errorf("non-canonical pair %d,%d", p.P.ID, p.Q.ID)
		}
	}
}
