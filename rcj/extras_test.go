package rcj

import (
	"math/rand"
	"sort"
	"testing"
)

func TestVerifyPair(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ps := randomPoints(rng, 120)
	qs := randomPoints(rng, 120)
	ixP := mustIndex(t, ps, IndexConfig{})
	ixQ := mustIndex(t, qs, IndexConfig{})
	pairs, _, err := Join(ixQ, ixP, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	// Every reported pair verifies.
	for _, pr := range pairs[:min(20, len(pairs))] {
		ok, err := VerifyPair(ixQ, ixP, pr.P, pr.Q)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("join pair <%d,%d> fails VerifyPair", pr.P.ID, pr.Q.ID)
		}
	}
	// Count non-pairs among the cross product; it must agree with the join.
	inJoin := keySet(pairs)
	verified := 0
	for _, p := range ps[:30] {
		for _, q := range qs[:30] {
			ok, err := VerifyPair(ixQ, ixP, p, q)
			if err != nil {
				t.Fatal(err)
			}
			if ok != inJoin[[2]int64{p.ID, q.ID}] {
				t.Errorf("VerifyPair(<%d,%d>)=%v disagrees with join membership", p.ID, q.ID, ok)
			}
			if ok {
				verified++
			}
		}
	}
	if verified == 0 {
		t.Error("no verified pairs in the sampled cross product")
	}
}

func TestTopKByDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ixP := mustIndex(t, randomPoints(rng, 200), IndexConfig{})
	ixQ := mustIndex(t, randomPoints(rng, 200), IndexConfig{})
	all, _, err := Join(ixQ, ixP, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5, 25, len(all), len(all) + 100} {
		top, err := TopKByDiameter(ixQ, ixP, k)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := k
		if wantLen > len(all) {
			wantLen = len(all)
		}
		if len(top) != wantLen {
			t.Fatalf("k=%d: got %d pairs, want %d", k, len(top), wantLen)
		}
		if !sort.SliceIsSorted(top, func(i, j int) bool { return top[i].Radius < top[j].Radius }) {
			t.Fatalf("k=%d: not ascending", k)
		}
		// The k-th smallest diameter matches the full sorted join (compare
		// radii; ties make identity comparison ambiguous).
		for i := range top {
			if d := top[i].Radius - all[i].Radius; d > 1e-9 || d < -1e-9 {
				t.Fatalf("k=%d: rank %d radius %g, want %g", k, i, top[i].Radius, all[i].Radius)
			}
		}
	}
	if got, err := TopKByDiameter(ixQ, ixP, 0); err != nil || got != nil {
		t.Fatalf("k=0: %v %v", got, err)
	}
}

func TestIndexStats(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ix := mustIndex(t, randomPoints(rng, 2000), IndexConfig{})
	st := ix.Stats()
	if st.Points != 2000 {
		t.Errorf("points %d", st.Points)
	}
	if st.Height < 2 {
		t.Errorf("height %d for 2000 points", st.Height)
	}
	if st.Pages < 2000/43 {
		t.Errorf("pages %d too few", st.Pages)
	}
	if st.PageSize != 1024 {
		t.Errorf("page size %d", st.PageSize)
	}
}

func TestParallelJoinPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ixP := mustIndex(t, randomPoints(rng, 300), IndexConfig{})
	ixQ := mustIndex(t, randomPoints(rng, 300), IndexConfig{})
	seq, _, err := Join(ixQ, ixP, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := Join(ixQ, ixP, JoinOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(keySet(seq), keySet(par)) {
		t.Fatal("parallel public join disagrees with sequential")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
