package rcj

import (
	"time"

	"repro/internal/plan"
)

// This file connects queries to the cost-based planner (internal/plan). A
// Query whose Algorithm is the zero value without ForceAlgorithm means
// "planner decides": Resolve turns it into a concrete, forced query — so
// cache keys, batch keys, and the executor all see the resolved plan — and
// returns the Decision for reporting. Resolution is idempotent: a resolved
// query takes the fixed path on every later Resolve.

// PlanDecision is one resolved query plan (see internal/plan.Decision).
type PlanDecision = plan.Decision

// PlanObserved is the runtime feedback a serving stack can hand the planner
// (see internal/plan.Observed).
type PlanObserved = plan.Observed

// Resolve resolves the query against the two join inputs, deriving the
// observed state (buffer hit ratio, measured fault latency) from their
// pools. Serving stacks with richer signals use ResolveObserved.
func (q Query) Resolve(qx, px *Index, self bool) (Query, PlanDecision) {
	return q.ResolveObserved(qx, px, self, autoObserved(qx, px))
}

// ResolveObserved is Resolve with caller-supplied observed state. When the
// query pins its plan — ForceAlgorithm, or an explicit non-zero Algorithm —
// the fixed plan is echoed verbatim (rule "fixed"); otherwise the planner
// picks algorithm, parallelism, prefetch depth, and predicate order from
// the inputs' metadata (epoch-aware for mutable indexes: the live point
// count, not the sealed superblock's). The returned query is marked
// ForceAlgorithm so Canonical(), batch keys, and every later Resolve see
// the concrete plan.
func (q Query) ResolveObserved(qx, px *Index, self bool, obs PlanObserved) (Query, PlanDecision) {
	if q.ForceAlgorithm || q.Algorithm != INJ {
		resolved := q
		resolved.ForceAlgorithm = true
		par := q.Parallelism
		if par < 1 {
			par = 1
		}
		return resolved, PlanDecision{
			Algorithm:      q.algorithm(),
			Parallelism:    par,
			UseWeightBound: q.Weight != nil && q.TopK > 0,
			Rule:           "fixed",
			Epochs:         [2]uint64{qx.Epoch(), px.Epoch()},
		}
	}
	req := plan.Request{
		Self:        self,
		MaxDiameter: q.MaxDiameter,
		MinDistance: q.MinDistance,
		TopK:        q.TopK,
		Limit:       q.Limit,
		Weighted:    q.Weight != nil,
		Parallelism: q.Parallelism,
	}
	if q.Region != nil {
		r := q.Region.geom()
		req.Region = &r
	}
	dec := plan.Plan(req, qx.planMeta(), px.planMeta(), obs)
	resolved := q
	resolved.Algorithm = dec.Algorithm
	resolved.ForceAlgorithm = true
	if resolved.Parallelism < 1 {
		resolved.Parallelism = dec.Parallelism
	}
	resolved.predOrder = dec.PredicateOrder
	qx.applyPlan(dec)
	if px != qx {
		px.applyPlan(dec)
	}
	return resolved, dec
}

// planMeta assembles this index's planner metadata without reading data
// pages. Mutable indexes answer from the live epoch layer — LiveStats, not
// the sealed superblock, whose count goes stale the moment a delta batch
// lands — and carry their epoch so the decision is pinned to the state it
// planned against.
func (ix *Index) planMeta() plan.IndexMeta {
	if ls, ok := ix.LiveStats(); ok {
		return plan.IndexMeta{
			Count:   ls.Points,
			Mutable: true,
			Epoch:   ls.Seq,
		}
	}
	m := plan.IndexMeta{
		Count:  ix.pts,
		Remote: ix.remote != nil,
	}
	if ix.tree != nil {
		m.Count = ix.tree.Size()
		m.Height = ix.tree.Height()
		m.LeafCap = ix.tree.LeafCap()
		ix.planMBROnce.Do(func() {
			if mbr, err := ix.tree.RootMBR(); err == nil {
				ix.planMBR = mbr
				ix.planMBROK = true
			}
		})
		if ix.planMBROK {
			m.MBR = ix.planMBR
			m.HasMBR = true
		}
	}
	return m
}

// applyPlan applies the decision's advisory knobs to this index: the
// readahead depth cap on a remote index's prefetcher. Shared across
// concurrent queries, last writer wins — the cap only shapes speculation,
// never correctness.
func (ix *Index) applyPlan(dec PlanDecision) {
	if ix.prefetch != nil && dec.PrefetchDepth > 0 {
		ix.prefetch.SetDepthLimit(dec.PrefetchDepth)
	}
}

// Observe derives planner feedback from the inputs' buffer pools: the hit
// ratio predicts faults, and the measured per-miss load wait calibrates
// what a fault costs on this backend. Serving stacks start from this and
// overlay their own signals (free slots, queue depth) before calling
// ResolveObserved.
func Observe(qx, px *Index) PlanObserved { return autoObserved(qx, px) }

// autoObserved derives planner feedback from the inputs' buffer pools: the
// hit ratio predicts faults, and the measured per-miss load wait (the
// satellite of the cost-model fix) calibrates what a fault costs on this
// backend.
func autoObserved(qx, px *Index) plan.Observed {
	var obs plan.Observed
	pool := qx.pool
	if pool == nil {
		pool = px.pool
	}
	if pool == nil {
		return obs
	}
	st := pool.Stats()
	obs.BufferHitRatio = st.HitRatio()
	if st.Misses > 0 {
		obs.FaultLatency = time.Duration(st.LoadNanos / st.Misses)
	}
	return obs
}
