package rcj

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"
)

// TestNodeCacheEquivalence opens a saved index pair twice — once on an engine
// with the decoded-node cache, once without — under a deliberately tiny
// buffer pool, and checks the joins are identical pair for pair while the
// cached engine actually served pool misses from the cache.
func TestNodeCacheEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ps := randomPoints(rng, 500)
	qs := randomPoints(rng, 450)

	build := NewEngine(EngineConfig{})
	builtP, err := build.BuildIndex(ps, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	builtQ, err := build.BuildIndex(qs, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pathP := filepath.Join(dir, "p.rcjx")
	pathQ := filepath.Join(dir, "q.rcjx")
	if err := builtP.Save(pathP); err != nil {
		t.Fatal(err)
	}
	if err := builtQ.Save(pathQ); err != nil {
		t.Fatal(err)
	}
	builtP.Close()
	builtQ.Close()

	ctx := context.Background()
	run := func(t *testing.T, nodeCache int) ([]Pair, *Engine) {
		t.Helper()
		// 8 pages of pool: nearly every access is a miss, so the node cache
		// is on the hot path rather than shadowed by the pool.
		eng := NewEngine(EngineConfig{BufferPages: 8, NodeCachePages: nodeCache})
		ixP, err := eng.OpenIndex(pathP, IndexConfig{Backend: BackendFile})
		if err != nil {
			t.Fatal(err)
		}
		defer ixP.Close()
		ixQ, err := eng.OpenIndex(pathQ, IndexConfig{Backend: BackendFile})
		if err != nil {
			t.Fatal(err)
		}
		defer ixQ.Close()
		pairs, st, err := eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{Algorithm: OBJ, ForceAlgorithm: true})
		return collectSorted(t, pairs, st, err), eng
	}

	want, plain := run(t, 0)
	if h, _ := plain.NodeCacheStats(); h != 0 {
		t.Fatalf("disabled cache reported %d hits", h)
	}
	got, cached := run(t, 1<<16)
	equalPairs(t, "node-cache", got, want)
	hits, misses := cached.NodeCacheStats()
	if hits == 0 {
		t.Fatalf("node cache never hit (misses=%d) — pool misses are not reaching it", misses)
	}
}

// TestNodeCacheInvalidatedOnClose reopens the same path twice under one
// engine and checks the second index starts cold: its generation is fresh, so
// no stale nodes of the closed index can serve its reads.
func TestNodeCacheInvalidatedOnClose(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	build := NewEngine(EngineConfig{})
	built, err := build.BuildIndex(randomPoints(rng, 300), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.rcjx")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	built.Close()

	eng := NewEngine(EngineConfig{BufferPages: 4, NodeCachePages: 1 << 16})
	ix1, err := eng.OpenIndex(path, IndexConfig{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix1.Points(); err != nil {
		t.Fatal(err)
	}
	if err := ix1.Close(); err != nil {
		t.Fatal(err)
	}

	ix2, err := eng.OpenIndex(path, IndexConfig{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	hitsBefore, _ := eng.NodeCacheStats()
	if _, err := ix2.Points(); err != nil {
		t.Fatal(err)
	}
	hitsAfter, _ := eng.NodeCacheStats()
	if hitsAfter != hitsBefore {
		t.Fatalf("reopened index hit %d stale cache entries", hitsAfter-hitsBefore)
	}
}
