package rcj

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// TestSavePackedRoundTrip is the v2↔v3 equivalence gate: the same index
// saved both ways must open on every backend (mem, file, mmap, http) with
// identical joins, and re-saving the packed copy as v2 must reproduce the v2
// file byte for byte — the packed blobs decode to the exact raw page image.
func TestSavePackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := randomPoints(rng, 700)
	ix := mustIndex(t, pts, IndexConfig{})
	dir := t.TempDir()
	v2Path := filepath.Join(dir, "ix-v2.rcjx")
	v3Path := filepath.Join(dir, "ix-v3.rcjx")
	if err := ix.Save(v2Path); err != nil {
		t.Fatal(err)
	}
	if err := ix.SavePacked(v3Path); err != nil {
		t.Fatal(err)
	}
	v2Bytes, err := os.ReadFile(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	v3Bytes, err := os.ReadFile(v3Path)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform-random ys barely compress (XOR deltas of unrelated doubles), so
	// the bound here is looser than the sorted-data ratio in package storage.
	if len(v3Bytes) >= len(v2Bytes)*85/100 {
		t.Fatalf("packed index %d bytes vs v2 %d: expected < 85%%", len(v3Bytes), len(v2Bytes))
	}
	if sb, err := storage.ReadSuperblockFile(v3Path); err != nil || !sb.Packed() {
		t.Fatalf("packed superblock: %+v, %v", sb, err)
	}
	if !IsIndexFile(v3Path) {
		t.Fatal("IsIndexFile(packed) = false")
	}

	wantPairs, _, err := SelfJoin(ix, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range saveBackends() {
		t.Run(be.String(), func(t *testing.T) {
			re, err := OpenIndex(v3Path, IndexConfig{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			got, _, err := SelfJoin(re, JoinOptions{SortByDiameter: true})
			if err != nil {
				t.Fatal(err)
			}
			equalPairs(t, "packed "+be.String(), got, wantPairs)

			// Byte identity: decompress → re-save as v2 → the original v2 file.
			resaved := filepath.Join(dir, "resaved-"+be.String()+".rcjx")
			if err := re.Save(resaved); err != nil {
				t.Fatal(err)
			}
			resavedBytes, err := os.ReadFile(resaved)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resavedBytes, v2Bytes) {
				t.Fatalf("v3 → open(%s) → v2 re-save differs from the original v2 bytes", be)
			}

			// And the packed form itself is deterministic: re-saving packed
			// reproduces the v3 file.
			repacked := filepath.Join(dir, "repacked-"+be.String()+".rcjx")
			if err := re.SavePacked(repacked); err != nil {
				t.Fatal(err)
			}
			repackedBytes, err := os.ReadFile(repacked)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(repackedBytes, v3Bytes) {
				t.Fatalf("v3 → open(%s) → v3 re-save differs from the original v3 bytes", be)
			}
		})
	}

	t.Run("http", func(t *testing.T) {
		srv := serveDir(t, dir, 0)
		re, err := OpenIndex(srv.URL+"/ix-v3.rcjx", IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if re.Backend() != BackendHTTP {
			t.Fatalf("backend %s", re.Backend())
		}
		got, _, err := SelfJoin(re, JoinOptions{SortByDiameter: true})
		if err != nil {
			t.Fatal(err)
		}
		equalPairs(t, "packed http", got, wantPairs)
		resaved := filepath.Join(t.TempDir(), "resaved-http.rcjx")
		if err := re.Save(resaved); err != nil {
			t.Fatal(err)
		}
		resavedBytes, err := os.ReadFile(resaved)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resavedBytes, v2Bytes) {
			t.Fatal("v3 → open(http) → v2 re-save differs from the original v2 bytes")
		}
		// The join plus the re-save pass over all pages at least twice, so
		// compare against the unpacked transfer volume for the same two
		// passes: packed fetches must stay under it.
		if st, ok := re.RemoteStats(); !ok || st.BytesFetched == 0 {
			t.Fatal("remote stats missing")
		} else if int(st.BytesFetched) >= 2*len(v2Bytes) {
			t.Fatalf("fetched %d bytes over a %d-byte packed file (v2 is %d) — blobs not serving compressed",
				st.BytesFetched, len(v3Bytes), len(v2Bytes))
		}
	})
}

// goldenV23Points regenerates the deterministic pointset the committed
// testdata/golden_v2.rcjx and golden_v3.rcjx fixtures were built from
// (seed 11, n=250) — both fixtures hold the same index, saved in each format.
func goldenV23Points() []Point {
	rng := rand.New(rand.NewSource(11))
	pts := make([]Point, 250)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: int64(i)}
	}
	return pts
}

// TestGoldenV2V3Fixtures is the on-disk compatibility gate for the current
// formats: committed v2 and packed-v3 fixtures must keep opening on every
// backend (and over HTTP) with joins identical to a fresh build, and the v3
// fixture must still decode to exactly the committed v2 bytes — any codec or
// writer drift that changes the bits fails here.
func TestGoldenV2V3Fixtures(t *testing.T) {
	fresh := mustIndex(t, goldenV23Points(), IndexConfig{})
	wantPairs, _, err := SelfJoin(fresh, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	v2Bytes, err := os.ReadFile("testdata/golden_v2.rcjx")
	if err != nil {
		t.Fatal(err)
	}
	for _, golden := range []string{"testdata/golden_v2.rcjx", "testdata/golden_v3.rcjx"} {
		name := filepath.Base(golden)
		if !IsIndexFile(golden) {
			t.Fatalf("IsIndexFile(%s) = false", name)
		}
		for _, be := range saveBackends() {
			t.Run(name+"/"+be.String(), func(t *testing.T) {
				ix, err := OpenIndex(golden, IndexConfig{Backend: be})
				if err != nil {
					t.Fatal(err)
				}
				defer ix.Close()
				got, _, err := SelfJoin(ix, JoinOptions{SortByDiameter: true})
				if err != nil {
					t.Fatal(err)
				}
				equalPairs(t, name, got, wantPairs)
			})
		}
		t.Run(name+"/http", func(t *testing.T) {
			srv := serveDir(t, "testdata", 0)
			ix, err := OpenIndex(srv.URL+"/"+name, IndexConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			got, _, err := SelfJoin(ix, JoinOptions{SortByDiameter: true})
			if err != nil {
				t.Fatal(err)
			}
			equalPairs(t, name+" http", got, wantPairs)
		})
	}
	t.Run("v3_decodes_to_v2_bytes", func(t *testing.T) {
		ix, err := OpenIndex("testdata/golden_v3.rcjx", IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		resaved := filepath.Join(t.TempDir(), "resaved.rcjx")
		if err := ix.Save(resaved); err != nil {
			t.Fatal(err)
		}
		resavedBytes, err := os.ReadFile(resaved)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resavedBytes, v2Bytes) {
			t.Fatal("committed golden_v3 no longer decodes to the committed golden_v2 bytes")
		}
	})
}

// TestSavePackedCrossFormatJoin joins a v2-opened index against a v3-opened
// index — mixed formats in one engine must interoperate.
func TestSavePackedCrossFormatJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps, qs := randomPoints(rng, 400), randomPoints(rng, 350)
	ixP, ixQ := mustIndex(t, ps, IndexConfig{}), mustIndex(t, qs, IndexConfig{})
	dir := t.TempDir()
	pPath, qPath := filepath.Join(dir, "p.rcjx"), filepath.Join(dir, "q.rcjx")
	if err := ixP.Save(pPath); err != nil {
		t.Fatal(err)
	}
	if err := ixQ.SavePacked(qPath); err != nil {
		t.Fatal(err)
	}
	wantPairs, wantStats, wantErr := Join(ixQ, ixP, JoinOptions{})
	want := collectSorted(t, wantPairs, wantStats, wantErr)

	reP, err := OpenIndex(pPath, IndexConfig{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	defer reP.Close()
	reQ, err := OpenIndex(qPath, IndexConfig{Backend: BackendFile})
	if err != nil {
		t.Fatal(err)
	}
	defer reQ.Close()
	gotPairs, gotStats, gotErr := Join(reQ, reP, JoinOptions{})
	got := collectSorted(t, gotPairs, gotStats, gotErr)
	equalPairs(t, "mixed formats", got, want)
}
