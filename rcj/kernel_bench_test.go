package rcj

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// BenchmarkLeafKernels measures the warm join path the leaf kernels serve:
// every page resident, so per-op cost is decode + filter + verify CPU work —
// the columnar leaf representation, the decoded-node cache, the bulk
// distance pass, and the leaf verify kernel, with no I/O in the loop.
//
//   - selfjoin/warm: the self-join over one opened index.
//   - join/warm-v2 and join/warm-v3: the binary join over two opened
//     indexes, from the raw-page and the packed format — identical results,
//     so any gap between them is pure blob-decode cost (paid once per pool
//     miss, amortized to ~zero warm).
//
// The buffer pool is sized above the working set: unlike
// BenchmarkJoinBackends, which keeps the pool small to exercise the
// backends, this is the kernels' steady state.
func BenchmarkLeafKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	ps := randomPoints(rng, 3000)
	qs := randomPoints(rng, 3000)

	dir := b.TempDir()
	paths := map[string]string{
		"v2-p": filepath.Join(dir, "p2.rcjx"), "v2-q": filepath.Join(dir, "q2.rcjx"),
		"v3-p": filepath.Join(dir, "p3.rcjx"), "v3-q": filepath.Join(dir, "q3.rcjx"),
	}
	{
		eng := NewEngine(EngineConfig{})
		ixP, err := eng.BuildIndex(ps, IndexConfig{})
		if err != nil {
			b.Fatal(err)
		}
		ixQ, err := eng.BuildIndex(qs, IndexConfig{})
		if err != nil {
			b.Fatal(err)
		}
		for ix, side := range map[*Index]string{ixP: "p", ixQ: "q"} {
			if err := ix.Save(paths["v2-"+side]); err != nil {
				b.Fatal(err)
			}
			if err := ix.SavePacked(paths["v3-"+side]); err != nil {
				b.Fatal(err)
			}
		}
		ixP.Close()
		ixQ.Close()
	}

	ctx := context.Background()
	open := func(b *testing.B, eng *Engine, path string) *Index {
		b.Helper()
		ix, err := eng.OpenIndex(path, IndexConfig{Backend: BackendMem})
		if err != nil {
			b.Fatal(err)
		}
		return ix
	}

	b.Run("selfjoin/warm", func(b *testing.B) {
		eng := NewEngine(EngineConfig{})
		ix := open(b, eng, paths["v2-p"])
		defer ix.Close()
		if _, _, err := eng.SelfJoinCollect(ctx, ix, JoinOptions{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.SelfJoinCollect(ctx, ix, JoinOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, format := range []string{"v2", "v3"} {
		format := format
		b.Run(fmt.Sprintf("join/warm-%s", format), func(b *testing.B) {
			eng := NewEngine(EngineConfig{})
			ixP := open(b, eng, paths[format+"-p"])
			defer ixP.Close()
			ixQ := open(b, eng, paths[format+"-q"])
			defer ixQ.Close()
			if _, _, err := eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
