package rcj

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

// BenchmarkRemoteJoin measures a cold self-join over an index served by a
// local HTTP server with an injected per-request latency, prefetch on vs
// off: the readahead's whole job is to overlap those round trips, so the
// on/off gap at a given latency is the honest value of the prefetcher on
// this machine. Each iteration opens a fresh engine (cold pool), so every
// page is one range fetch.
func BenchmarkRemoteJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	pts := randomPoints(rng, 3000)
	dir := b.TempDir()
	ix, err := BuildIndex(pts, IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "ix.rcjx")
	if err := ix.Save(path); err != nil {
		b.Fatal(err)
	}
	ix.Close()

	for _, latency := range []time.Duration{0, time.Millisecond} {
		fs := http.FileServer(http.Dir(dir))
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if latency > 0 {
				time.Sleep(latency)
			}
			fs.ServeHTTP(w, r)
		}))
		for _, prefetch := range []struct {
			name    string
			workers int
		}{{"prefetch=off", -1}, {"prefetch=on", 0}} {
			name := "latency=" + latency.String() + "/" + prefetch.name
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					eng := NewEngine(EngineConfig{BufferPages: 4096})
					re, err := eng.OpenIndex(srv.URL+"/ix.rcjx", IndexConfig{PrefetchWorkers: prefetch.workers})
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := eng.SelfJoinCollect(context.Background(), re, JoinOptions{}); err != nil {
						b.Fatal(err)
					}
					re.Close()
				}
			})
		}
		srv.Close()
	}
}
