package rcj

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// BenchmarkRemoteJoin measures a cold self-join over an index served by a
// local HTTP server with an injected per-request latency, prefetch on vs
// off: the readahead's whole job is to overlap those round trips, so the
// on/off gap at a given latency is the honest value of the prefetcher on
// this machine. Each iteration opens a fresh engine (cold pool), so every
// page is one range fetch.
func BenchmarkRemoteJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	pts := randomPoints(rng, 3000)
	dir := b.TempDir()
	ix, err := BuildIndex(pts, IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "ix.rcjx")
	if err := ix.Save(path); err != nil {
		b.Fatal(err)
	}
	ix.Close()

	for _, latency := range []time.Duration{0, time.Millisecond} {
		fs := http.FileServer(http.Dir(dir))
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if latency > 0 {
				time.Sleep(latency)
			}
			fs.ServeHTTP(w, r)
		}))
		for _, prefetch := range []struct {
			name    string
			workers int
		}{{"prefetch=off", -1}, {"prefetch=on", 0}} {
			name := "latency=" + latency.String() + "/" + prefetch.name
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					eng := NewEngine(EngineConfig{BufferPages: 4096})
					re, err := eng.OpenIndex(srv.URL+"/ix.rcjx", IndexConfig{PrefetchWorkers: prefetch.workers})
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := eng.SelfJoinCollect(context.Background(), re, JoinOptions{}); err != nil {
						b.Fatal(err)
					}
					re.Close()
				}
			})
		}
		srv.Close()
	}
}

// BenchmarkSharedRemoteJoin measures the fan-in value of shared-work
// serving: 8 clients issue the identical cold self-join against an index
// behind a 1ms-RTT origin. "unshared" gives each client its own engine,
// pool, and pager — how 8 separate processes behave: every page fetched 8
// times, the traversal computed 8 times. "shared" serves all 8 the way
// rcjd's scheduler serves queued identical queries: one engine (so the
// buffer pool and single-flight pager fetch each page once) running one
// batched traversal whose output is demuxed to all 8 consumers. The honest
// numbers are fetches/op (~8x -> ~1x per page) and the aggregate wall-clock
// for all 8 clients.
func BenchmarkSharedRemoteJoin(b *testing.B) {
	const clients = 8
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 3000)
	dir := b.TempDir()
	ix, err := BuildIndex(pts, IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "ix.rcjx")
	if err := ix.Save(path); err != nil {
		b.Fatal(err)
	}
	ix.Close()

	fs := http.FileServer(http.Dir(dir))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Millisecond)
		fs.ServeHTTP(w, r)
	}))
	defer srv.Close()

	// runClients drains the identical self-join on all 8 clients at once;
	// client c uses engine/index c modulo the slice length, so one-element
	// slices mean fully shared and 8-element slices mean fully private.
	runClients := func(b *testing.B, engines []*Engine, ixs []*Index) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(eng *Engine, re *Index) {
				defer wg.Done()
				for _, err := range eng.RunSelf(context.Background(), re, Query{}) {
					if err != nil {
						b.Error(err)
						return
					}
				}
			}(engines[c%len(engines)], ixs[c%len(ixs)])
		}
		wg.Wait()
	}

	b.Run("unshared", func(b *testing.B) {
		var fetches int64
		for i := 0; i < b.N; i++ {
			engines := make([]*Engine, clients)
			ixs := make([]*Index, clients)
			for c := range engines {
				engines[c] = NewEngine(EngineConfig{BufferPages: 4096})
				re, err := engines[c].OpenIndex(srv.URL+"/ix.rcjx", IndexConfig{})
				if err != nil {
					b.Fatal(err)
				}
				ixs[c] = re
			}
			runClients(b, engines, ixs)
			for _, re := range ixs {
				rs, _ := re.RemoteStats()
				fetches += rs.Fetches
				re.Close()
			}
		}
		b.ReportMetric(float64(fetches)/float64(b.N), "fetches/op")
	})

	b.Run("shared", func(b *testing.B) {
		var fetches, shared int64
		for i := 0; i < b.N; i++ {
			eng := NewEngine(EngineConfig{BufferPages: 4096})
			re, err := eng.OpenIndex(srv.URL+"/ix.rcjx", IndexConfig{})
			if err != nil {
				b.Fatal(err)
			}
			// One traversal, 8 consumers — the scheduler's batch demux. Each
			// consumer receives every pair, as 8 identical queries would.
			chans := make([]chan []Pair, clients)
			var wg sync.WaitGroup
			for c := range chans {
				chans[c] = make(chan []Pair, 16)
				wg.Add(1)
				go func(ch chan []Pair) {
					defer wg.Done()
					for range ch {
					}
				}(chans[c])
			}
			for prs, err := range eng.RunSelfBatches(context.Background(), re, Query{}) {
				if err != nil {
					b.Fatal(err)
				}
				for _, ch := range chans {
					ch <- prs
				}
			}
			for _, ch := range chans {
				close(ch)
			}
			wg.Wait()
			rs, _ := re.RemoteStats()
			fetches += rs.Fetches
			shared += rs.SharedFetches
			re.Close()
		}
		b.ReportMetric(float64(fetches)/float64(b.N), "fetches/op")
		b.ReportMetric(float64(shared)/float64(b.N), "shared/op")
	})
}
