package rcj_test

import (
	"fmt"
	"log"

	"repro/rcj"
)

// Example reproduces Figure 1 of the paper: P = {p1, p2}, Q = {q1, q2}.
// The pair <p1, q2> is excluded because its enclosing circle contains p2;
// the other three pairs qualify.
func Example() {
	p := []rcj.Point{
		{X: 0.30, Y: 0.75, ID: 1},
		{X: 0.40, Y: 0.40, ID: 2},
	}
	q := []rcj.Point{
		{X: 0.55, Y: 0.65, ID: 1},
		{X: 0.65, Y: 0.20, ID: 2},
	}
	ixP, err := rcj.BuildIndex(p, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixP.Close()
	ixQ, err := rcj.BuildIndex(q, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixQ.Close()

	pairs, _, err := rcj.Join(ixQ, ixP, rcj.JoinOptions{SortByDiameter: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range pairs {
		fmt.Printf("<p%d, q%d>\n", pr.P.ID, pr.Q.ID)
	}
	// Output:
	// <p1, q1>
	// <p2, q1>
	// <p2, q2>
}

// ExampleSelfJoin places postboxes among buildings: each unordered pair of
// buildings whose enclosing circle contains no third building gets a box at
// the midpoint.
func ExampleSelfJoin() {
	buildings := []rcj.Point{
		{X: 0, Y: 0, ID: 1},
		{X: 4, Y: 0, ID: 2},
		{X: 8, Y: 0, ID: 3},
	}
	ix, err := rcj.BuildIndex(buildings, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	pairs, _, err := rcj.SelfJoin(ix, rcj.JoinOptions{SortByDiameter: true})
	if err != nil {
		log.Fatal(err)
	}
	// <1,3> is excluded: building 2 sits inside its circle.
	for _, pr := range pairs {
		fmt.Printf("box at (%.0f, %.0f) for buildings %d and %d\n",
			pr.Center.X, pr.Center.Y, pr.P.ID, pr.Q.ID)
	}
	// Output:
	// box at (2, 0) for buildings 1 and 2
	// box at (6, 0) for buildings 2 and 3
}

// ExampleVerifyPair validates a specific candidate pair without running the
// whole join.
func ExampleVerifyPair() {
	p := []rcj.Point{{X: 0, Y: 0, ID: 1}, {X: 2, Y: 2, ID: 2}}
	q := []rcj.Point{{X: 4, Y: 0, ID: 1}}
	ixP, err := rcj.BuildIndex(p, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixP.Close()
	ixQ, err := rcj.BuildIndex(q, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixQ.Close()

	ok, err := rcj.VerifyPair(ixQ, ixP, p[0], q[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pair <p1, q1> qualifies:", ok)
	// p2 at (2,2) lies inside the circle through (0,0) and (4,0)? Its
	// center is (2,0), radius 2; (2,2) is at distance 2 — on the boundary,
	// which the closed-circle convention counts as covering.
	// Output:
	// pair <p1, q1> qualifies: false
}

// ExampleTopKByDiameter streams the join and keeps only the tightest pairs,
// in O(k) memory.
func ExampleTopKByDiameter() {
	var p, q []rcj.Point
	for i := 0; i < 10; i++ {
		p = append(p, rcj.Point{X: float64(i) * 10, Y: 0, ID: int64(i)})
		q = append(q, rcj.Point{X: float64(i)*10 + 1 + 0.5*float64(i), Y: 0, ID: int64(i)})
	}
	ixP, err := rcj.BuildIndex(p, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixP.Close()
	ixQ, err := rcj.BuildIndex(q, rcj.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ixQ.Close()

	top, err := rcj.TopKByDiameter(ixQ, ixP, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range top {
		fmt.Printf("<p%d, q%d> diameter %.1f\n", pr.P.ID, pr.Q.ID, pr.Diameter())
	}
	// Output:
	// <p0, q0> diameter 1.0
	// <p1, q1> diameter 1.5
}
