package rcj

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// ErrMonitorDelete is returned by Monitor.Delete: deletion maintenance is
// unsupported by design (a removal can revive pairs between arbitrarily
// distant points, so no local search bounds the affected set). Rebuild the
// monitor over the surviving points instead; live-index subscriptions do
// exactly that and emit a resync event.
var ErrMonitorDelete = core.ErrMonitorDelete

// Monitor maintains a ring-constrained join incrementally as new points
// arrive — the planning workflow where facilities open over time and the
// set of fair middleman locations must stay current without recomputing
// the join from scratch.
//
// Insertions are exact: AddP/AddQ return precisely the pairs created and
// invalidated. Deletions are not supported (a removal can revive pairs
// between arbitrarily distant points, defeating local maintenance); rebuild
// the monitor instead.
//
// The monitor takes over its indexes: after NewMonitor, mutate the datasets
// only through AddP/AddQ.
type Monitor struct {
	m    *core.Monitor
	self bool
}

// NewMonitor computes the initial join between the datasets of q and p and
// returns a monitor maintaining it.
func NewMonitor(q, p *Index) (*Monitor, error) {
	cm, err := core.NewMonitor(q.tree, p.tree)
	if err != nil {
		return nil, err
	}
	return &Monitor{m: cm, self: q == p}, nil
}

// NewSelfMonitor maintains the self-join of one dataset (postboxes-style);
// pairs are canonical (P.ID < Q.ID).
func NewSelfMonitor(ix *Index) (*Monitor, error) {
	cm, err := core.NewMonitor(ix.tree, ix.tree)
	if err != nil {
		return nil, err
	}
	return &Monitor{m: cm, self: true}, nil
}

// Len returns the current number of pairs.
func (mo *Monitor) Len() int { return mo.m.Len() }

// Pairs returns a snapshot of the current result set (unspecified order).
func (mo *Monitor) Pairs() []Pair {
	raw := mo.m.Pairs()
	out := make([]Pair, len(raw))
	for i, p := range raw {
		out[i] = fromCorePair(p)
	}
	return out
}

// AddP inserts a new point into dataset P, returning the pairs the
// insertion created and the pairs it invalidated.
func (mo *Monitor) AddP(p Point) (added, removed []Pair, err error) {
	a, r, err := mo.m.AddP(geom.Point{X: p.X, Y: p.Y}, p.ID)
	return convertPairs(a), convertPairs(r), err
}

// AddQ inserts a new point into dataset Q (equivalent to AddP for a
// self-monitor).
func (mo *Monitor) AddQ(q Point) (added, removed []Pair, err error) {
	a, r, err := mo.m.AddQ(geom.Point{X: q.X, Y: q.Y}, q.ID)
	return convertPairs(a), convertPairs(r), err
}

// Delete always fails with ErrMonitorDelete; it makes the no-deletion
// contract typed and testable instead of a silently missing method.
func (mo *Monitor) Delete(p Point) error {
	return mo.m.Delete(geom.Point{X: p.X, Y: p.Y}, p.ID)
}

func convertPairs(raw []core.Pair) []Pair {
	if raw == nil {
		return nil
	}
	out := make([]Pair, len(raw))
	for i, p := range raw {
		out[i] = fromCorePair(p)
	}
	return out
}
