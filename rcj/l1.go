package rcj

import (
	"context"

	"repro/internal/buffer"
	"repro/internal/core"
)

// L1Pair is one Manhattan-metric ring-constrained join result: the two
// matched points and their smallest enclosing L1 ball (a diamond). Center is
// the fair middleman under Manhattan travel — the natural metric for grid
// street networks, per the generalization the paper proposes in its future
// work.
type L1Pair struct {
	P, Q   Point
	Center Point
	Radius float64 // L1 radius: Manhattan distance from Center to P and Q
}

// JoinL1 computes the Manhattan-metric ring-constrained join between the
// datasets of q and p: all pairs whose smallest enclosing L1 ball contains
// no other point of either dataset.
func JoinL1(q, p *Index) ([]L1Pair, Stats, error) {
	return runJoinL1(context.Background(), q, p, false)
}

// JoinL1Context is JoinL1 under a context, aborting promptly with ctx.Err()
// on cancellation.
func JoinL1Context(ctx context.Context, q, p *Index) ([]L1Pair, Stats, error) {
	return runJoinL1(ctx, q, p, false)
}

// SelfJoinL1 computes the Manhattan-metric self-join of one dataset; each
// unordered pair is reported once with P.ID < Q.ID.
func SelfJoinL1(ix *Index) ([]L1Pair, Stats, error) {
	return runJoinL1(context.Background(), ix, ix, true)
}

// SelfJoinL1Context is SelfJoinL1 under a context.
func SelfJoinL1Context(ctx context.Context, ix *Index) ([]L1Pair, Stats, error) {
	return runJoinL1(ctx, ix, ix, true)
}

func runJoinL1(ctx context.Context, q, p *Index, self bool) ([]L1Pair, Stats, error) {
	var rec buffer.TagStats
	tq := q.tree.Tagged(&rec)
	tp := tq
	if p.tree != q.tree {
		tp = p.tree.Tagged(&rec)
	}
	pairs, st, err := core.JoinL1Context(ctx, tq, tp, core.Options{SelfJoin: self, Collect: true})
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]L1Pair, len(pairs))
	for i, cp := range pairs {
		out[i] = L1Pair{
			P:      Point{X: cp.P.P.X, Y: cp.P.P.Y, ID: cp.P.ID},
			Q:      Point{X: cp.Q.P.X, Y: cp.Q.P.Y, ID: cp.Q.ID},
			Center: Point{X: cp.Ball.Center.X, Y: cp.Ball.Center.Y},
			Radius: cp.Ball.Radius,
		}
	}
	stats := Stats{Candidates: st.Candidates, Results: st.Results}
	recStats := rec.Stats()
	stats.PageFaults = recStats.Misses
	stats.NodeAccesses = recStats.Accesses
	return out, stats, nil
}
