package rcj

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// postFilterQuery applies qry's predicates to an unconstrained result the
// way the pushdown claims to: Matches for the pair-level predicates, then
// the TopK/Limit truncation of the diameter ranking.
func postFilterQuery(full []Pair, qry Query) []Pair {
	var out []Pair
	for _, p := range full {
		if qry.Matches(p) {
			out = append(out, p)
		}
	}
	if qry.TopK > 0 {
		SortPairsByDiameter(out)
		k := qry.TopK
		if qry.Limit > 0 && qry.Limit < k {
			k = qry.Limit
		}
		if len(out) > k {
			out = out[:k]
		}
	}
	return out
}

// queryCases enumerates predicate combinations over the 10000² universe of
// testPoints.
func queryCases() []Query {
	region := &Rect{MinX: 1500, MinY: 1500, MaxX: 8000, MaxY: 8000}
	tight := &Rect{MinX: 4000, MinY: 4000, MaxX: 6000, MaxY: 6000}
	return []Query{
		{},
		{MaxDiameter: 500},
		{MinDistance: 300},
		{Region: region},
		{Region: tight},
		{TopK: 1},
		{TopK: 12},
		{TopK: 10_000}, // k beyond the result size: identical to unconstrained
		{MaxDiameter: 800, Region: region},
		{TopK: 8, Region: tight},
		{TopK: 15, MaxDiameter: 700, MinDistance: 150},
		{MaxDiameter: 600, MinDistance: 250, Region: region},
		{TopK: 9, Limit: 4},
	}
}

// TestRunPushdownProperty is the randomized equivalence property: for any
// predicate combination, any algorithm, self- or two-set join, sequential
// or parallel, streaming Engine.Run returns exactly the post-filtered
// unconstrained join. Run under -race in CI, it also exercises the shared
// dynamic TopK bound across workers.
func TestRunPushdownProperty(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(123))
	ps := testPoints(rng, 350, 0)
	qs := testPoints(rng, 350, 0)
	ixP, err := eng.BuildIndex(ps, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixP.Close()
	ixQ, err := eng.BuildIndex(qs, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixQ.Close()

	ctx := context.Background()
	for _, self := range []bool{false, true} {
		var full []Pair
		if self {
			full, _, err = eng.SelfJoinCollect(ctx, ixP, JoinOptions{})
		} else {
			full, _, err = eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{})
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{INJ, BIJ, OBJ} {
			for _, par := range []int{1, 4} {
				for ci, qry := range queryCases() {
					qry.Algorithm = alg
					qry.ForceAlgorithm = true
					qry.Parallelism = par
					var st Stats
					qry.Stats = &st
					var seq func(func(Pair, error) bool)
					if self {
						seq = eng.RunSelf(ctx, ixP, qry)
					} else {
						seq = eng.Run(ctx, ixQ, ixP, qry)
					}
					got, err := Collect(seq)
					if err != nil {
						t.Fatalf("%v self=%v par=%d case=%d: %v", alg, self, par, ci, err)
					}
					want := postFilterQuery(full, qry)
					label := fmt.Sprintf("%v self=%v par=%d case=%d", alg, self, par, ci)
					samePairs(t, label, sortedPairs(want), sortedPairs(got))
					if st.Results != int64(len(got)) {
						t.Errorf("%s: Stats.Results = %d, want %d", label, st.Results, len(got))
					}
				}
			}
		}
	}
}

// TestRunLimitSubset checks the Limit contract on its own: at most Limit
// pairs, all members of the unconstrained result.
func TestRunLimitSubset(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(5))
	ixP, _ := eng.BuildIndex(testPoints(rng, 400, 0), IndexConfig{})
	defer ixP.Close()
	ixQ, _ := eng.BuildIndex(testPoints(rng, 400, 0), IndexConfig{})
	defer ixQ.Close()

	ctx := context.Background()
	full, _, err := eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fullKeys := keySet(full)
	for _, par := range []int{1, 3} {
		for _, limit := range []int{1, 7, len(full) + 5} {
			got, st, err := eng.RunCollect(ctx, ixQ, ixP, Query{Limit: limit, Parallelism: par})
			if err != nil {
				t.Fatalf("par=%d limit=%d: %v", par, limit, err)
			}
			want := limit
			if len(full) < want {
				want = len(full)
			}
			if len(got) != want {
				t.Errorf("par=%d limit=%d: %d pairs, want %d", par, limit, len(got), want)
			}
			if st.Results != int64(len(got)) {
				t.Errorf("par=%d limit=%d: Stats.Results = %d, want %d", par, limit, st.Results, len(got))
			}
			for _, p := range got {
				if !fullKeys[[2]int64{p.P.ID, p.Q.ID}] {
					t.Errorf("par=%d limit=%d: pair (%d,%d) not in unconstrained result", par, limit, p.P.ID, p.Q.ID)
				}
			}
		}
	}
}

// TestRunPushdownSavesNodeAccesses is the acceptance check on the paper's
// experiment scale (3000×3000 uniform): a TopK (and a MaxDiameter) query
// must touch strictly fewer R-tree nodes than computing the full join and
// post-filtering, and must report the pruned subtrees.
func TestRunPushdownSavesNodeAccesses(t *testing.T) {
	if testing.Short() {
		t.Skip("3000×3000 join in -short mode")
	}
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(42))
	ixP, err := eng.BuildIndex(testPoints(rng, 3000, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixP.Close()
	ixQ, err := eng.BuildIndex(testPoints(rng, 3000, 0), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ixQ.Close()

	ctx := context.Background()
	full, fullStats, err := eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}

	topk, topkStats, err := eng.RunCollect(ctx, ixQ, ixP, Query{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := postFilterQuery(full, Query{TopK: 10})
	samePairs(t, "top-10", sortedPairs(want), sortedPairs(topk))
	if topkStats.NodeAccesses >= fullStats.NodeAccesses {
		t.Errorf("top-10 pushdown: %d node accesses, join-then-sort-then-truncate pays %d — no saving",
			topkStats.NodeAccesses, fullStats.NodeAccesses)
	}
	if topkStats.NodesPruned == 0 {
		t.Error("top-10 pushdown: NodesPruned = 0")
	}

	_, mdStats, err := eng.RunCollect(ctx, ixQ, ixP, Query{MaxDiameter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if mdStats.NodeAccesses >= fullStats.NodeAccesses {
		t.Errorf("max-diameter pushdown: %d node accesses, unconstrained pays %d — no saving",
			mdStats.NodeAccesses, fullStats.NodeAccesses)
	}
	t.Logf("3000×3000: full=%d accesses; top-10=%d accesses (%d pruned); max-diameter=%d accesses (%d pruned)",
		fullStats.NodeAccesses, topkStats.NodeAccesses, topkStats.NodesPruned, mdStats.NodeAccesses, mdStats.NodesPruned)
}

// TestRunTopKStreamOrder checks the streaming contract of TopK: the
// iterator yields exactly k pairs, in ascending diameter order.
func TestRunTopKStreamOrder(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(8))
	ixP, _ := eng.BuildIndex(testPoints(rng, 300, 0), IndexConfig{})
	defer ixP.Close()
	ixQ, _ := eng.BuildIndex(testPoints(rng, 300, 0), IndexConfig{})
	defer ixQ.Close()

	var got []Pair
	for pr, err := range eng.Run(context.Background(), ixQ, ixP, Query{TopK: 6, Parallelism: 2}) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pr)
	}
	if len(got) != 6 {
		t.Fatalf("streamed %d pairs, want 6", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Radius < got[j].Radius }) {
		t.Error("top-k stream not in ascending diameter order")
	}
}

// TestQueryValidate covers the malformed-query rejections, streaming and
// collecting.
func TestQueryValidate(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(3))
	ix, _ := eng.BuildIndex(testPoints(rng, 50, 0), IndexConfig{})
	defer ix.Close()

	bad := []Query{
		{TopK: -1},
		{Limit: -2},
		{MaxDiameter: -0.5},
		{MinDistance: -1},
		{Parallelism: -3},
		{Region: &Rect{MinX: 10, MaxX: 5, MinY: 0, MaxY: 1}},
		// A NaN coordinate would otherwise silently prune everything.
		{Region: &Rect{MinX: math.NaN(), MinY: 0, MaxX: 1, MaxY: 1}},
		{Region: &Rect{MinX: 0, MinY: 0, MaxX: math.NaN(), MaxY: 1}},
	}
	for i, qry := range bad {
		if _, _, err := eng.RunSelfCollect(context.Background(), ix, qry); !errors.Is(err, ErrBadQuery) {
			t.Errorf("case %d: RunSelfCollect error = %v, want ErrBadQuery", i, err)
		}
		var streamErr error
		for _, err := range eng.RunSelf(context.Background(), ix, qry) {
			streamErr = err
			break
		}
		if !errors.Is(streamErr, ErrBadQuery) {
			t.Errorf("case %d: RunSelf stream error = %v, want ErrBadQuery", i, streamErr)
		}
	}

	// The v1 surface never validated Parallelism (<= 1 ran sequentially);
	// the wrapper must preserve that, not inherit v2's strictness.
	if _, _, err := SelfJoin(ix, JoinOptions{Parallelism: -3}); err != nil {
		t.Errorf("v1 SelfJoin with negative Parallelism: %v, want sequential run", err)
	}
}

// TestTopKByDiameterPushdown pins the reimplemented convenience helper to
// the pushdown path: same answer as sorting the full join, fewer node
// accesses implied by NodesPruned in the underlying machinery (covered
// elsewhere); here we check the contract only.
func TestTopKByDiameterPushdown(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ixP := mustIndex(t, randomPoints(rng, 200), IndexConfig{})
	defer ixP.Close()
	ixQ := mustIndex(t, randomPoints(rng, 200), IndexConfig{})
	defer ixQ.Close()

	full, _, err := Join(ixQ, ixP, JoinOptions{SortByDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 5, len(full), len(full) + 3} {
		got, err := TopKByDiameter(ixQ, ixP, k)
		if err != nil {
			t.Fatal(err)
		}
		want := full
		if k < len(full) {
			want = full[:max(k, 0)]
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d pairs, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i].P.ID != want[i].P.ID || got[i].Q.ID != want[i].Q.ID {
				t.Fatalf("k=%d: pair %d = (%d,%d), want (%d,%d)", k, i, got[i].P.ID, got[i].Q.ID, want[i].P.ID, want[i].Q.ID)
			}
		}
	}
}

// BenchmarkQueryPushdown quantifies pushdown against join-then-filter on
// the paper's 3000×3000 uniform workload: the same answer with far fewer
// node accesses. The per-op metrics report exact per-run tagged counters.
func BenchmarkQueryPushdown(b *testing.B) {
	eng := NewEngine(EngineConfig{})
	rng := rand.New(rand.NewSource(42))
	mk := func() *Index {
		pts := make([]Point, 3000)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000, ID: int64(i)}
		}
		ix, err := eng.BuildIndex(pts, IndexConfig{})
		if err != nil {
			b.Fatal(err)
		}
		return ix
	}
	ixP, ixQ := mk(), mk()
	defer ixP.Close()
	defer ixQ.Close()
	ctx := context.Background()

	run := func(b *testing.B, qry Query, post func([]Pair) []Pair) {
		var st Stats
		qry.Stats = &st
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pairs, _, err := eng.RunCollect(ctx, ixQ, ixP, qry)
			if err != nil {
				b.Fatal(err)
			}
			if post != nil {
				pairs = post(pairs)
			}
			_ = pairs
		}
		b.ReportMetric(float64(st.NodeAccesses), "node-accesses/op")
		b.ReportMetric(float64(st.NodesPruned), "nodes-pruned/op")
	}

	b.Run("top10-pushdown", func(b *testing.B) { run(b, Query{TopK: 10}, nil) })
	b.Run("top10-postfilter", func(b *testing.B) {
		run(b, Query{}, func(pairs []Pair) []Pair {
			SortPairsByDiameter(pairs)
			if len(pairs) > 10 {
				pairs = pairs[:10]
			}
			return pairs
		})
	})
	b.Run("maxdiam150-pushdown", func(b *testing.B) { run(b, Query{MaxDiameter: 150}, nil) })
	b.Run("maxdiam150-postfilter", func(b *testing.B) {
		q := Query{MaxDiameter: 150}
		run(b, Query{}, func(pairs []Pair) []Pair {
			kept := pairs[:0]
			for _, p := range pairs {
				if q.Matches(p) {
					kept = append(kept, p)
				}
			}
			return kept
		})
	})
}
