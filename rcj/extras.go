package rcj

import (
	"context"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// VerifyPair checks the ring constraint for one specific candidate pair
// without running the full join: it reports whether the smallest circle
// enclosing p (from the p index's dataset) and q (from the q index's
// dataset) covers no other point of either dataset. Use it to validate a
// proposed middleman location.
func VerifyPair(q, p *Index, pPoint, qPoint Point) (bool, error) {
	return core.VerifyPair(q.tree, p.tree,
		rtree.PointEntry{P: geom.Point{X: pPoint.X, Y: pPoint.Y}, ID: pPoint.ID},
		rtree.PointEntry{P: geom.Point{X: qPoint.X, Y: qPoint.Y}, ID: qPoint.ID},
		q == p)
}

// TopKByDiameter computes the k ring-constrained join pairs with the
// smallest enclosing-circle diameters — the head of the paper's
// tourist-recommendation browsing order — without materializing the full
// result set. It runs a Query with TopK pushdown, so the traversal itself
// is bounded (branch-and-bound), not just the memory. The returned slice
// is in ascending diameter order.
func TopKByDiameter(q, p *Index, k int) ([]Pair, error) {
	if k <= 0 {
		return nil, nil
	}
	pairs, _, err := runQuery(context.Background(), q, p, Query{TopK: k}, false, nil)
	return pairs, err
}

// IndexStats describes the physical shape of an index.
type IndexStats struct {
	// Points is the number of indexed points.
	Points int
	// Height is the number of tree levels (1 = the root is a leaf).
	Height int
	// Pages is the number of disk pages the index occupies.
	Pages int
	// PageSize is the page size in bytes.
	PageSize int
}

// Stats returns the physical shape of the index.
func (ix *Index) Stats() IndexStats {
	return IndexStats{
		Points:   ix.pts,
		Height:   ix.tree.Height(),
		Pages:    ix.tree.NumPages(),
		PageSize: ix.pager.PageSize(),
	}
}
