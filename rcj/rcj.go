// Package rcj is the public API of the ring-constrained join library, a Go
// implementation of "Ring-constrained Join: Deriving Fair Middleman
// Locations from Pointsets via a Geometric Constraint" (Yiu, Karras,
// Mamoulis — EDBT 2008).
//
// Given two pointsets P and Q, the ring-constrained join returns every pair
// <p, q> whose smallest enclosing circle contains no other point of P ∪ Q.
// Each result carries the circle's center — a location equidistant from p
// and q that minimizes the maximum distance to both — making RCJ a
// parameter-free way to derive fair "middleman" locations: recycling
// stations between restaurants and residences, taxi stands between cinemas
// and restaurants, postboxes among buildings (a self-join), and so on.
//
// Basic use:
//
//	restaurants, _ := rcj.BuildIndex(pointsP, rcj.IndexConfig{})
//	residences, _ := rcj.BuildIndex(pointsQ, rcj.IndexConfig{})
//	pairs, _, _ := rcj.Join(residences, restaurants, rcj.JoinOptions{})
//	for _, pr := range pairs {
//		fmt.Println("place a station at", pr.Center, "radius", pr.Radius)
//	}
//
// The join runs on disk-page R*-trees through an LRU buffer manager, so its
// statistics (page faults, node accesses, candidate counts) mirror the
// paper's cost model. Indexes default to in-memory pages; see
// IndexConfig.Path for file-backed indexes.
package rcj

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/live"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Point is an input location with a caller-assigned identifier. IDs must be
// unique within one dataset; the two sides of a join have independent ID
// namespaces.
type Point struct {
	X, Y float64
	ID   int64
}

// Pair is one ring-constrained join result: the two matched points and
// their smallest enclosing circle. Center is the derived fair middleman
// location; Radius is its common distance to both endpoints, so 2·Radius is
// the pair's "ring diameter" used for ranking.
type Pair struct {
	P, Q   Point
	Center Point
	Radius float64
}

// Diameter returns the diameter of the pair's enclosing circle.
func (p Pair) Diameter() float64 { return 2 * p.Radius }

// Algorithm selects the join evaluation strategy.
type Algorithm = core.Algorithm

// The paper's algorithms, from baseline to most optimized. OBJ wins in all
// of the paper's experiments and is the default.
const (
	INJ   = core.AlgINJ
	BIJ   = core.AlgBIJ
	OBJ   = core.AlgOBJ
	Brute = core.AlgBrute
)

// IndexConfig controls index construction.
type IndexConfig struct {
	// PageSize is the disk page size in bytes (default 1024, the paper's
	// setting).
	PageSize int
	// InsertBuild builds the tree with one-by-one R* insertions instead of
	// the default STR bulk load. Bulk loading is faster and yields more
	// compact trees; insertion build exists for incremental workloads and
	// for the build ablation.
	InsertBuild bool
	// BufferPages bounds the index's LRU node buffer; 0 means unbounded
	// (everything cached), negative also means unbounded.
	BufferPages int
	// Path, when non-empty, stores index pages in the file at this path
	// instead of memory. (This is the raw page file used during a build; a
	// finished index is persisted in the durable index format with
	// Index.Save and reopened with OpenIndex.)
	Path string
	// Backend selects the page substrate OpenIndex serves a saved index
	// from: BackendMem (default) loads the whole page image into memory,
	// BackendFile reads pages from the file on each buffer miss,
	// BackendMmap maps the file read-only, and BackendHTTP fetches pages by
	// HTTP range request from a URL (implied when the source is an http(s)
	// URL). Ignored by BuildIndex.
	Backend Backend
	// HTTP tunes the remote pager of an http-backend index (client, retry
	// bound, backoff). Zero value = serving defaults. Ignored by the local
	// backends.
	HTTP HTTPConfig
	// PrefetchWorkers sizes the async readahead pool of an http-backend
	// index: 0 selects DefaultPrefetchWorkers, negative disables prefetch.
	// Local backends never prefetch (their page reads are cheaper than the
	// scheduling would be).
	PrefetchWorkers int
}

// Index is an immutable spatial index over one dataset, ready to join. An
// index is either self-contained (BuildIndex: private buffer pool) or
// attached to an Engine's shared pool (Engine.BuildIndex).
type Index struct {
	tree   *rtree.Tree
	pager  storage.Pager
	pool   *buffer.Pool
	pts    int
	owner  uint32
	shared bool // pool belongs to an Engine, not this index

	backend  Backend            // substrate of an opened index (mem for builds)
	remote   *storage.HTTPPager // non-nil for http-backend indexes
	prefetch *buffer.Prefetcher // non-nil when async readahead is running

	nodeCache  *rtree.NodeCache // engine's decoded-node cache; nil = off
	cacheOwner uint64           // this index's generation in nodeCache

	// Planner metadata cache: the root MBR of an immutable tree never
	// changes, so it is read once (one node access) on the first planned
	// query and reused for every later one.
	planMBROnce sync.Once
	planMBR     geom.Rect
	planMBROK   bool

	// live, when non-nil, makes this a mutable index: reads go through the
	// epoch layer's merged base+delta view instead of tree, and
	// Insert/Delete/Compact apply (see mutable.go). The immutable fields
	// above are unused (the live index owns its sealed bases).
	live *live.Index
}

// ErrNoPoints is returned when building an index from an empty slice.
var ErrNoPoints = errors.New("rcj: no points to index")

// BuildIndex indexes the points in an R*-tree with a private buffer pool.
// Indexes that should share one buffer across concurrent joins are built
// with Engine.BuildIndex instead.
func BuildIndex(points []Point, cfg IndexConfig) (*Index, error) {
	capacity := cfg.BufferPages
	if capacity <= 0 {
		capacity = -1
	}
	return buildIndex(points, cfg, buffer.NewPool(capacity), 0, false)
}

// buildIndex is the shared index builder: pool is either the index's private
// pool or an Engine's shared pool (shared=true), and owner namespaces the
// index's pages within it.
func buildIndex(points []Point, cfg IndexConfig, pool *buffer.Pool, owner uint32, shared bool) (*Index, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = storage.DefaultPageSize
	}
	seen := make(map[int64]struct{}, len(points))
	entries := make([]rtree.PointEntry, len(points))
	for i, p := range points {
		if _, dup := seen[p.ID]; dup {
			return nil, fmt.Errorf("rcj: duplicate point ID %d", p.ID)
		}
		seen[p.ID] = struct{}{}
		entries[i] = rtree.PointEntry{P: geom.Point{X: p.X, Y: p.Y}, ID: p.ID}
	}

	var pager storage.Pager
	if cfg.Path != "" {
		fp, err := storage.CreateFilePager(cfg.Path, cfg.PageSize)
		if err != nil {
			return nil, err
		}
		pager = fp
	} else {
		pager = storage.NewMemPager(cfg.PageSize)
	}
	tree, err := rtree.New(pager, pool, rtree.Config{Owner: owner, PageSize: cfg.PageSize})
	if err != nil {
		pager.Close()
		return nil, err
	}
	if cfg.InsertBuild {
		for _, e := range entries {
			if err := tree.Insert(e.P, e.ID); err != nil {
				pager.Close()
				return nil, err
			}
		}
	} else if err := tree.BulkLoad(entries, 0); err != nil {
		pager.Close()
		return nil, err
	}
	return &Index{tree: tree, pager: pager, pool: pool, pts: len(points), owner: owner, shared: shared}, nil
}

// Len returns the number of indexed points (the current live count for a
// mutable index).
func (ix *Index) Len() int {
	if ix.live != nil {
		return ix.live.Len()
	}
	return ix.pts
}

// Points returns all indexed points (in index leaf order; a mutable index
// returns its current point set in ascending ID order, the canonical order
// compaction seals).
func (ix *Index) Points() ([]Point, error) {
	if ix.live != nil {
		entries := ix.live.PointsSorted()
		out := make([]Point, len(entries))
		for i, e := range entries {
			out[i] = Point{X: e.P.X, Y: e.P.Y, ID: e.ID}
		}
		return out, nil
	}
	entries, err := ix.tree.ScanAll()
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(entries))
	for i, e := range entries {
		out[i] = Point{X: e.P.X, Y: e.P.Y, ID: e.ID}
	}
	return out, nil
}

// NearestNeighbor returns the indexed point closest to (x, y).
func (ix *Index) NearestNeighbor(x, y float64) (Point, error) {
	if ix.live != nil {
		return Point{}, errors.New("rcj: NearestNeighbor is not supported on mutable indexes")
	}
	e, err := ix.tree.NearestNeighbor(geom.Point{X: x, Y: y})
	if err != nil {
		return Point{}, err
	}
	return Point{X: e.P.X, Y: e.P.Y, ID: e.ID}, nil
}

// Backend returns the page substrate the index is served from (BackendMem
// for freshly built indexes).
func (ix *Index) Backend() Backend { return ix.backend }

// RemoteStats returns the transfer counters of an http-backend index, and
// whether the index is remote at all.
func (ix *Index) RemoteStats() (RemoteStats, bool) {
	if ix.remote == nil {
		return RemoteStats{}, false
	}
	return ix.remote.Remote(), true
}

// PrefetchStats returns the readahead counters of the index's prefetcher,
// and whether one is running (http-backend indexes unless disabled).
func (ix *Index) PrefetchStats() (PrefetchStats, bool) {
	if ix.prefetch == nil {
		return PrefetchStats{}, false
	}
	return ix.prefetch.Stats(), true
}

// Close releases the index's storage (and closes its page file, if any).
// For an Engine-built index, its cached nodes are also dropped from the
// engine's shared buffer. A remote index closes its pager first — aborting
// in-flight fetches and their retry loops — then drains the prefetcher, so
// Close returns promptly even when the origin has hung instead of waiting
// out a retry budget per queued readahead.
func (ix *Index) Close() error {
	if ix.live != nil {
		// The epoch layer closes subscription feeds, waits out any background
		// compaction, and retires the current base — which releases the
		// sealed index's resources once the last in-flight query drains.
		return ix.live.Close()
	}
	var err error
	if ix.remote != nil {
		err = ix.remote.Close()
	}
	if ix.prefetch != nil {
		ix.prefetch.Close()
	}
	if ix.shared {
		ix.pool.InvalidateOwner(ix.owner)
	}
	if ix.nodeCache != nil {
		ix.nodeCache.InvalidateOwner(ix.cacheOwner)
	}
	if cerr := ix.pager.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats summarizes what a join run did; see the fields for the paper
// concepts they correspond to. The buffer counters (PageFaults,
// NodeAccesses) are attributed to the run exactly via per-join access
// tagging, even when other joins run concurrently on the same shared pool.
type Stats struct {
	// Candidates is the number of pairs that survived the filter step and
	// were verified (Table 4's candidate counts).
	Candidates int64
	// Results is the number of result pairs.
	Results int64
	// PageFaults counts buffer misses across both indexes during the join.
	PageFaults int64
	// NodeAccesses counts logical R-tree node reads, the paper's CPU
	// proxy.
	NodeAccesses int64
	// NodesPruned counts index subtrees the query predicates discarded
	// without reading (0 for unconstrained joins) — how much work the
	// pushdown saved versus computing the full join.
	NodesPruned int64
	// BoundKilledCandidates counts filtered candidates killed at the start
	// of verification because a TopK run's dynamic diameter bound had
	// tightened past them since they were filtered — verification work the
	// branch-and-bound saved beyond filtering.
	BoundKilledCandidates int64
}

// BufferHitRatio returns the fraction of this run's node accesses served
// from the buffer: 1 - PageFaults/NodeAccesses (0 when nothing was read).
func (s Stats) BufferHitRatio() float64 {
	if s.NodeAccesses == 0 {
		return 0
	}
	return 1 - float64(s.PageFaults)/float64(s.NodeAccesses)
}

// JoinOptions tunes a join. The zero value runs OBJ, the paper's best
// algorithm, and collects all pairs.
//
// JoinOptions is the v1 request form, kept as a thin wrapper over Query:
// Join(q, p, opts) is exactly RunCollect with the equivalent unconstrained
// Query. New code that wants predicate pushdown (top-k, max-diameter,
// region windows) should use Query with Engine.Run/RunCollect.
type JoinOptions struct {
	// Algorithm picks the strategy; zero value (INJ) is overridden to OBJ
	// unless ForceAlgorithm is set, because OBJ dominates in every
	// experiment.
	Algorithm Algorithm
	// ForceAlgorithm uses Algorithm verbatim even when it is the zero
	// value (INJ).
	ForceAlgorithm bool
	// SortByDiameter orders the returned pairs by ascending ring diameter
	// (the paper's tourist-recommendation browsing order).
	SortByDiameter bool
	// Parallelism, when > 1, runs the join across that many goroutines.
	// The result set is identical; its order is not deterministic (apply
	// SortByDiameter for a stable order).
	Parallelism int
	// OnPair, when non-nil, streams pairs as found; the returned slice is
	// then nil (streaming mode).
	OnPair func(Pair)
	// Stats, when non-nil, receives the run's statistics. For the streaming
	// Engine.Join/SelfJoin — which have no Stats return — it is filled when
	// the iterator terminates (the write happens-before the range loop
	// returns, so reading it afterwards is race-free). The buffer counters
	// are exact for this join even under concurrent joins on one Engine.
	Stats *Stats
}

// query translates the v1 options into the equivalent (unconstrained)
// Query, the single execution path. v1 never validated Parallelism — any
// value <= 1 ran sequentially — so negative values are clamped rather than
// handed to Query.Validate's stricter v2 contract.
func (o JoinOptions) query() Query {
	par := o.Parallelism
	if par < 0 {
		par = 0
	}
	return Query{
		Algorithm:      o.Algorithm,
		ForceAlgorithm: o.ForceAlgorithm,
		Parallelism:    par,
		SortByDiameter: o.SortByDiameter,
		Stats:          o.Stats,
	}
}

// Join computes the ring-constrained join between the datasets of p and q:
// all pairs <pi, qj> whose smallest enclosing circle contains no other point
// of either dataset.
func Join(q, p *Index, opts JoinOptions) ([]Pair, Stats, error) {
	return runJoin(context.Background(), q, p, opts, false)
}

// SelfJoin computes the ring-constrained self-join of one dataset (the
// paper's postboxes scenario): unordered pairs of distinct points whose
// enclosing circle contains no other dataset point. Each pair is reported
// once with P.ID < Q.ID.
func SelfJoin(ix *Index, opts JoinOptions) ([]Pair, Stats, error) {
	return runJoin(context.Background(), ix, ix, opts, true)
}

func runJoin(ctx context.Context, q, p *Index, opts JoinOptions, self bool) ([]Pair, Stats, error) {
	return runQuery(ctx, q, p, opts.query(), self, opts.OnPair)
}

func fromCorePair(cp core.Pair) Pair {
	return Pair{
		P:      Point{X: cp.P.P.X, Y: cp.P.P.Y, ID: cp.P.ID},
		Q:      Point{X: cp.Q.P.X, Y: cp.Q.P.Y, ID: cp.Q.ID},
		Center: Point{X: cp.Circle.Center.X, Y: cp.Circle.Center.Y},
		Radius: cp.Circle.Radius,
	}
}

// SortPairsByDiameter orders pairs by ascending enclosing-circle diameter,
// breaking ties by (P.ID, Q.ID) for determinism. Browsing this order, the
// tightest (most convenient) middleman locations come first.
func SortPairsByDiameter(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Radius != pairs[j].Radius {
			return pairs[i].Radius < pairs[j].Radius
		}
		if pairs[i].P.ID != pairs[j].P.ID {
			return pairs[i].P.ID < pairs[j].P.ID
		}
		return pairs[i].Q.ID < pairs[j].Q.ID
	})
}

// RankPairsByWeight orders pairs by descending combined weight, where weight
// assigns a score to each endpoint (the paper's school-bus scenario ranks
// estate pairs by the number of children). Ties break by ascending diameter
// then IDs.
func RankPairsByWeight(pairs []Pair, weight func(Point) float64) {
	score := func(pr Pair) float64 { return weight(pr.P) + weight(pr.Q) }
	sort.Slice(pairs, func(i, j int) bool {
		si, sj := score(pairs[i]), score(pairs[j])
		if si != sj {
			return si > sj
		}
		if pairs[i].Radius != pairs[j].Radius {
			return pairs[i].Radius < pairs[j].Radius
		}
		if pairs[i].P.ID != pairs[j].P.ID {
			return pairs[i].P.ID < pairs[j].P.ID
		}
		return pairs[i].Q.ID < pairs[j].Q.ID
	})
}
