package rcj

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkJoinBackends compares the three pager backends a saved index can
// be served from, cold and warm:
//
//   - cold: a fresh Engine opens both index files and runs one join — the
//     cold-start serving path (open cost + every page faulted from the
//     backend into an empty buffer pool).
//   - warm: one Engine reuses its buffer pool across joins — steady-state
//     serving, where the backend only sees capacity misses.
//
// The buffer pool is deliberately smaller than the working set so the warm
// case still exercises the backend, not just the pool.
func BenchmarkJoinBackends(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	ps := randomPoints(rng, 3000)
	qs := randomPoints(rng, 3000)

	dir := b.TempDir()
	pathP := filepath.Join(dir, "p.rcjx")
	pathQ := filepath.Join(dir, "q.rcjx")
	{
		eng := NewEngine(EngineConfig{})
		ixP, err := eng.BuildIndex(ps, IndexConfig{})
		if err != nil {
			b.Fatal(err)
		}
		ixQ, err := eng.BuildIndex(qs, IndexConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if err := ixP.Save(pathP); err != nil {
			b.Fatal(err)
		}
		if err := ixQ.Save(pathQ); err != nil {
			b.Fatal(err)
		}
		ixP.Close()
		ixQ.Close()
	}
	if fi, err := os.Stat(pathP); err == nil {
		b.Logf("index file: %d KiB", fi.Size()/1024)
	}

	ctx := context.Background()
	const bufferPages = 64 // < working set: warm joins still fault

	for _, be := range saveBackends() {
		be := be
		b.Run(fmt.Sprintf("%s/open", be), func(b *testing.B) {
			// Open + close only: the cold-start reattach cost. mem pays a
			// full page-image load; file and mmap are O(1) in index size.
			eng := NewEngine(EngineConfig{BufferPages: bufferPages})
			for i := 0; i < b.N; i++ {
				ix, err := eng.OpenIndex(pathP, IndexConfig{Backend: be})
				if err != nil {
					b.Fatal(err)
				}
				ix.Close()
			}
		})
		b.Run(fmt.Sprintf("%s/cold", be), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := NewEngine(EngineConfig{BufferPages: bufferPages})
				ixP, err := eng.OpenIndex(pathP, IndexConfig{Backend: be})
				if err != nil {
					b.Fatal(err)
				}
				ixQ, err := eng.OpenIndex(pathQ, IndexConfig{Backend: be})
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{}); err != nil {
					b.Fatal(err)
				}
				ixP.Close()
				ixQ.Close()
			}
		})
		b.Run(fmt.Sprintf("%s/warm", be), func(b *testing.B) {
			eng := NewEngine(EngineConfig{BufferPages: bufferPages})
			ixP, err := eng.OpenIndex(pathP, IndexConfig{Backend: be})
			if err != nil {
				b.Fatal(err)
			}
			defer ixP.Close()
			ixQ, err := eng.OpenIndex(pathQ, IndexConfig{Backend: be})
			if err != nil {
				b.Fatal(err)
			}
			defer ixQ.Close()
			if _, _, err := eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{}); err != nil {
				b.Fatal(err) // prime the pool outside the timer
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.JoinCollect(ctx, ixQ, ixP, JoinOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
