// Command rcjviz renders a ring-constrained join as an SVG: dataset P as
// blue dots, dataset Q as red dots, each result pair's enclosing circle in
// translucent gray with its center — the fair middleman location — marked
// with a cross.
//
// Usage:
//
//	rcjviz -p restaurants.csv -q residences.csv > join.svg
//	rcjviz -p buildings.csv -self > postboxes.svg
//	rcjviz -demo > demo.svg                      # built-in demo scene
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/workload"
	"repro/rcj"
)

func main() {
	var (
		pPath = flag.String("p", "", "CSV file of dataset P")
		qPath = flag.String("q", "", "CSV file of dataset Q")
		self  = flag.Bool("self", false, "render the self-join of P")
		demo  = flag.Bool("demo", false, "render a built-in demo scene instead of files")
		size  = flag.Int("size", 900, "output image size in pixels")
	)
	flag.Parse()

	var pPts, qPts []rcj.Point
	switch {
	case *demo:
		pPts, qPts = demoScene()
	case *pPath != "" && (*qPath != "" || *self):
		pPts = loadPoints(*pPath)
		if !*self {
			qPts = loadPoints(*qPath)
		}
	default:
		fmt.Fprintln(os.Stderr, "rcjviz: need -demo, or -p with -q (or -self)")
		flag.Usage()
		os.Exit(2)
	}

	ixP, err := rcj.BuildIndex(pPts, rcj.IndexConfig{})
	if err != nil {
		fatalf("index P: %v", err)
	}
	defer ixP.Close()

	var pairs []rcj.Pair
	if *self || *demo && qPts == nil {
		pairs, _, err = rcj.SelfJoin(ixP, rcj.JoinOptions{})
	} else {
		var ixQ *rcj.Index
		ixQ, err = rcj.BuildIndex(qPts, rcj.IndexConfig{})
		if err != nil {
			fatalf("index Q: %v", err)
		}
		defer ixQ.Close()
		pairs, _, err = rcj.Join(ixQ, ixP, rcj.JoinOptions{})
	}
	if err != nil {
		fatalf("join: %v", err)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if err := renderSVG(out, pPts, qPts, pairs, *size); err != nil {
		fatalf("render: %v", err)
	}
	fmt.Fprintf(os.Stderr, "rcjviz: rendered %d P points, %d Q points, %d pairs\n",
		len(pPts), len(qPts), len(pairs))
}

// demoScene builds a small clustered scene whose join is visually readable.
func demoScene() (p, q []rcj.Point) {
	rng := rand.New(rand.NewSource(8))
	centers := [][2]float64{{250, 300}, {700, 250}, {450, 700}}
	for i := 0; i < 40; i++ {
		c := centers[i%len(centers)]
		p = append(p, rcj.Point{
			X: c[0] + rng.NormFloat64()*90, Y: c[1] + rng.NormFloat64()*90, ID: int64(i),
		})
		q = append(q, rcj.Point{
			X: c[0] + rng.NormFloat64()*90, Y: c[1] + rng.NormFloat64()*90, ID: int64(i),
		})
	}
	return p, q
}

func loadPoints(path string) []rcj.Point {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	entries, err := workload.ReadPoints(bufio.NewReader(f))
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	pts := make([]rcj.Point, len(entries))
	for i, e := range entries {
		pts[i] = rcj.Point{X: e.P.X, Y: e.P.Y, ID: e.ID}
	}
	return pts
}

// renderSVG writes the scene scaled into a size×size viewport.
func renderSVG(w io.Writer, p, q []rcj.Point, pairs []rcj.Pair, size int) error {
	minX, minY := +1e300, +1e300
	maxX, maxY := -1e300, -1e300
	expand := func(pts []rcj.Point) {
		for _, pt := range pts {
			minX, maxX = fmin(minX, pt.X), fmax(maxX, pt.X)
			minY, maxY = fmin(minY, pt.Y), fmax(maxY, pt.Y)
		}
	}
	expand(p)
	expand(q)
	if minX > maxX {
		return fmt.Errorf("no points")
	}
	span := fmax(maxX-minX, maxY-minY)
	if span == 0 {
		span = 1
	}
	const margin = 30.0
	scale := (float64(size) - 2*margin) / span
	tx := func(x float64) float64 { return margin + (x-minX)*scale }
	ty := func(y float64) float64 { return float64(size) - margin - (y-minY)*scale }

	if _, err := fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">
<rect width="100%%" height="100%%" fill="white"/>
`, size, size, size, size); err != nil {
		return err
	}
	// Circles first (underneath the points).
	for _, pr := range pairs {
		fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="#9aa0a6" fill-opacity="0.12" stroke="#5f6368" stroke-opacity="0.45" stroke-width="0.7"/>
`, tx(pr.Center.X), ty(pr.Center.Y), pr.Radius*scale)
	}
	for _, pr := range pairs {
		cx, cy := tx(pr.Center.X), ty(pr.Center.Y)
		fmt.Fprintf(w, `<path d="M%.2f %.2f L%.2f %.2f M%.2f %.2f L%.2f %.2f" stroke="#188038" stroke-width="1.2"/>
`, cx-3, cy, cx+3, cy, cx, cy-3, cx, cy+3)
	}
	for _, pt := range p {
		fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="2.6" fill="#1a73e8"/>
`, tx(pt.X), ty(pt.Y))
	}
	for _, pt := range q {
		fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="2.6" fill="#d93025"/>
`, tx(pt.X), ty(pt.Y))
	}
	fmt.Fprintf(w, `<text x="%f" y="20" font-family="sans-serif" font-size="13" fill="#3c4043">ring-constrained join: %d pairs; blue = P, red = Q, cross = middleman</text>
`, margin, len(pairs))
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

func fmin(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func fmax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rcjviz: "+format+"\n", args...)
	os.Exit(1)
}
