// Command rcjd is the ring-constrained join daemon: a long-lived process
// serving streaming RCJ queries over pre-built saved indexes (.rcjx) to
// HTTP clients, with bounded concurrency, FIFO admission queueing, and
// per-request observability.
//
// Usage:
//
//	rcjd -addr :8080 \
//	     -index restaurants=restaurants.rcjx -index residences=residences.rcjx \
//	     -backend mmap -buffer 4096 \
//	     -max-concurrent 4 -max-queue 64 -queue-timeout 2s -join-timeout 1m
//
//	# Serve indexes hosted by any range-capable HTTP server (no shared
//	# filesystem): pages fetch lazily, checksum-verified, with async
//	# readahead. URL indexes also load at runtime via POST /indexes.
//	rcjd -addr :8080 -index p=https://indexes.example.com/p.rcjx
//
//	# Stream a join (NDJSON, one pair per line, summary last):
//	curl -sN localhost:8080/join -d '{"p":"restaurants","q":"residences"}'
//
//	# Same result rows as `rcjjoin` CSV output:
//	curl -sN localhost:8080/join -d '{"p":"restaurants","q":"residences","format":"csv"}'
//
//	curl -s localhost:8080/indexes     # registry
//	curl -s localhost:8080/metrics     # counters: in-flight, queued, rejected, ...
//	curl -s localhost:8080/healthz     # 200 serving / 503 draining
//
//	# Live (mutable) indexes: open over a sealed base, or born empty.
//	# Mutations apply in atomic batches; a background compactor seals
//	# delta+base into .g<seq>.rcjx generations past -live-compact points.
//	rcjd -addr :8080 -live-index places=places.rcjx -live-index scratch \
//	     -live-compact 4096 -live-keep-generations 4
//	curl -s localhost:8080/indexes/places/points \
//	     -d '{"insert":[{"id":9001,"x":512.5,"y":1033.0}],"delete":[17]}'
//
//	# Continuous query: replay the current result set (add... sync), then
//	# exact incremental changes as batches apply (NDJSON, long-lived):
//	curl -sN localhost:8080/subscribe -d '{"p":"places","self":true}'
//
// Requests beyond -max-concurrent wait in a FIFO queue of depth -max-queue
// (429 once full; 429 after -queue-timeout in queue); each admitted join is
// capped by -join-timeout. SIGTERM/SIGINT drains gracefully: new joins get
// 503 while in-flight and queued streams run to completion, bounded by
// -drain-timeout.
//
// Shared-work serving (on by default): queued streaming queries over the
// same indexes merge into one traversal (-batch, -batch-max), and bounded
// top_k/limit results are memoized across requests (-result-cache,
// -result-cache-pairs), invalidated when an index is unloaded. Remote-index
// page fetches are single-flighted and coalesced automatically. /metrics
// reports all of it: rcjd_sched_batches_total, rcjd_result_cache_*,
// rcjd_remote_shared_total, rcjd_remote_coalesced_total.
//
// Adaptive planning (on by default): a join that names no algorithm
// ("alg" absent or "auto") is planned per query by the cost-based planner
// from index metadata and live scheduler load; naming one ("obj", "inj",
// "bij", "brute") forces it verbatim. Each NDJSON summary reports the
// resolved plan ("alg", "parallelism", "plan"); /metrics reports
// rcjd_plan_auto_total, rcjd_plan_fixed_total, and per-algorithm/-rule
// breakdowns.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/sched"
	"repro/internal/server"
	"repro/rcj"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		backend       = flag.String("backend", "mem", "pager backend for saved indexes: mem, file, mmap, or http (implied by URL indexes)")
		bufPages      = flag.Int("buffer", 4096, "shared buffer pool size in pages (0 = unbounded)")
		bufShards     = flag.Int("buffer-shards", 0, "buffer LRU shards (0 = auto from GOMAXPROCS)")
		maxConcurrent = flag.Int("max-concurrent", 2, "joins running simultaneously")
		maxQueue      = flag.Int("max-queue", 16, "admission queue depth beyond running joins (0 = no queue)")
		queueTimeout  = flag.Duration("queue-timeout", 5*time.Second, "max wait in the admission queue (0 = unbounded)")
		joinTimeout   = flag.Duration("join-timeout", 0, "per-request join deadline (0 = none)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight joins on shutdown")
		batch         = flag.Bool("batch", true, "merge queued compatible streaming queries into one shared traversal")
		batchMax      = flag.Int("batch-max", sched.DefaultBatchMaxRequests, "max requests one shared traversal may serve")
		cacheEntries  = flag.Int("result-cache", 256, "memoized result sets for bounded (top_k/limit) queries (0 = off)")
		cachePairs    = flag.Int("result-cache-pairs", server.DefaultResultCachePairs, "max pairs per memoized result")
		nodeCache     = flag.Int("node-cache", 0, "second-level decoded-node cache in nodes, serving buffer misses without re-reading pages (0 = off)")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty = off)")
		manifest      = flag.String("manifest", "", "shard manifest (.rcjm) to serve as a sharded-deployment worker")
		shardIDs      = flag.String("shards", "", "comma-separated shard ids of -manifest to own (default: all populated shards)")
		manifestBase  = flag.String("manifest-base", "", "URL or directory prefix overriding the manifest's relative shard paths (e.g. http://storage:9000/idx)")
		liveCompact   = flag.Int("live-compact", 0, "compact a live index once its in-memory delta reaches this many points (0 = default 4096, negative = manual only)")
		liveKeepGens  = flag.Int("live-keep-generations", 0, "on-disk sealed generations to keep per live index (0 = all)")
	)
	indexes := map[string]string{}
	flag.Func("index", "saved index to serve, as name=path.rcjx or name=https://host/ix.rcjx (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		if _, dup := indexes[name]; dup {
			return fmt.Errorf("duplicate index name %q", name)
		}
		indexes[name] = path
		return nil
	})
	liveIndexes := map[string]string{}
	flag.Func("live-index", "live (mutable) index to serve, as name=base.rcjx or just name for an index born empty (repeatable); accepts POST /indexes/{name}/points and /subscribe", func(v string) error {
		name, path, _ := strings.Cut(v, "=")
		if name == "" {
			return fmt.Errorf("want name=base.rcjx or name, got %q", v)
		}
		if _, dup := indexes[name]; dup {
			return fmt.Errorf("duplicate index name %q", name)
		}
		if _, dup := liveIndexes[name]; dup {
			return fmt.Errorf("duplicate index name %q", name)
		}
		liveIndexes[name] = path
		return nil
	})
	flag.Parse()

	if len(indexes) == 0 && len(liveIndexes) == 0 && *manifest == "" {
		fmt.Fprintln(os.Stderr, "rcjd: at least one -index name=path.rcjx, -live-index, or -manifest is required")
		flag.Usage()
		os.Exit(2)
	}
	var shards []int
	if *shardIDs != "" {
		if *manifest == "" {
			fatalf("-shards requires -manifest")
		}
		for _, f := range strings.Split(*shardIDs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fatalf("bad -shards entry %q: %v", f, err)
			}
			shards = append(shards, id)
		}
	}
	be, err := rcj.ParseBackend(*backend)
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = server.RunDaemon(ctx, server.DaemonConfig{
		Addr:                *addr,
		Indexes:             indexes,
		LiveIndexes:         liveIndexes,
		LiveCompactEvery:    *liveCompact,
		LiveKeepGenerations: *liveKeepGens,
		Manifest:            *manifest,
		ManifestShards:      shards,
		ManifestBase:        *manifestBase,
		Backend:             be,
		BufferPages:         *bufPages,
		BufferShards:        *bufShards,
		NodeCachePages:      *nodeCache,
		PprofAddr:           *pprofAddr,
		Sched: sched.Config{
			MaxConcurrent: *maxConcurrent,
			MaxQueue:      *maxQueue,
			QueueTimeout:  *queueTimeout,
			JoinTimeout:   *joinTimeout,
			Batch:         sched.BatchConfig{Enabled: *batch, MaxRequests: *batchMax},
		},
		ResultCacheEntries: *cacheEntries,
		ResultCachePairs:   *cachePairs,
		DrainTimeout:       *drainTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}, nil)
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rcjd: "+format+"\n", args...)
	os.Exit(1)
}
