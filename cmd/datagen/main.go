// Command datagen emits the evaluation datasets of the paper as CSV
// ("id,x,y" rows, coordinates in [0, 10000]²).
//
// Usage:
//
//	datagen -kind uniform -n 200000 -seed 1 > ui.csv
//	datagen -kind gaussian -n 200000 -clusters 10 -sigma 1000 > g.csv
//	datagen -kind pp > pp.csv      # real-like Populated Places stand-in
//	datagen -kind sc -n 5000 > sc_small.csv
//
//	# Also partition the generated set into a self-join shard deployment
//	# (per-shard .rcjx files next to the manifest, for rcjd/rcjrouter):
//	datagen -kind uniform -n 100000 -save-shards 4 -shards-out u.rcjm \
//	        -shard-max-diameter 250 > u.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/rtree"
	"repro/internal/shard"
	"repro/internal/workload"
	"repro/rcj"
)

func main() {
	var (
		kind     = flag.String("kind", "uniform", "dataset kind: uniform, gaussian, pp, sc, lo")
		n        = flag.Int("n", 0, "number of points (0 = kind's default; required for uniform/gaussian)")
		seed     = flag.Int64("seed", 1, "random seed (uniform/gaussian)")
		clusters = flag.Int("clusters", 10, "number of clusters (gaussian)")
		sigma    = flag.Float64("sigma", 1000, "cluster standard deviation per dimension (gaussian)")
		shardN   = flag.Int("save-shards", 0, "also partition the set into this many spatial shards (self-join manifest)")
		shardOut = flag.String("shards-out", "", "manifest path for -save-shards (.rcjm)")
		shardD   = flag.Float64("shard-max-diameter", 0, "diameter bound baked into the -save-shards manifest")
		savePack = flag.Bool("save-packed", false, "write -save-shards .rcjx files in the packed v3 format")
	)
	flag.Parse()

	var pts []rtree.PointEntry
	switch *kind {
	case "uniform":
		if *n <= 0 {
			fatalf("-n is required for uniform data")
		}
		pts = workload.Uniform(*n, *seed)
	case "gaussian":
		if *n <= 0 {
			fatalf("-n is required for gaussian data")
		}
		pts = workload.GaussianClusters(*n, *clusters, *sigma, *seed)
	case "pp":
		pts = workload.RealLike(workload.PP, *n)
	case "sc":
		pts = workload.RealLike(workload.SC, *n)
	case "lo":
		pts = workload.RealLike(workload.LO, *n)
	default:
		fatalf("unknown kind %q", *kind)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := workload.WritePoints(w, pts); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d points\n", len(pts))

	if *shardN > 0 {
		if *shardOut == "" {
			fatalf("-save-shards requires -shards-out manifest.rcjm")
		}
		if *shardD <= 0 {
			fatalf("-save-shards requires -shard-max-diameter > 0")
		}
		rpts := make([]rcj.Point, len(pts))
		for i, e := range pts {
			rpts[i] = rcj.Point{X: e.P.X, Y: e.P.Y, ID: e.ID}
		}
		name := strings.TrimSuffix(filepath.Base(*shardOut), shard.Ext)
		m, err := shard.Build(*shardOut, rpts, nil, shard.BuildConfig{
			Shards: *shardN, MaxDiameter: *shardD, Name: name, Self: true, Packed: *savePack,
		})
		if err != nil {
			fatalf("shard build: %v", err)
		}
		populated := 0
		for _, sh := range m.Shards {
			if !sh.Empty() {
				populated++
			}
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote %d shards (%dx%d grid, margin %g) and manifest %s\n",
			populated, m.GridNX, m.GridNY, m.Margin, *shardOut)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
