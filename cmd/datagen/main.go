// Command datagen emits the evaluation datasets of the paper as CSV
// ("id,x,y" rows, coordinates in [0, 10000]²).
//
// Usage:
//
//	datagen -kind uniform -n 200000 -seed 1 > ui.csv
//	datagen -kind gaussian -n 200000 -clusters 10 -sigma 1000 > g.csv
//	datagen -kind pp > pp.csv      # real-like Populated Places stand-in
//	datagen -kind sc -n 5000 > sc_small.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/rtree"
	"repro/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "uniform", "dataset kind: uniform, gaussian, pp, sc, lo")
		n        = flag.Int("n", 0, "number of points (0 = kind's default; required for uniform/gaussian)")
		seed     = flag.Int64("seed", 1, "random seed (uniform/gaussian)")
		clusters = flag.Int("clusters", 10, "number of clusters (gaussian)")
		sigma    = flag.Float64("sigma", 1000, "cluster standard deviation per dimension (gaussian)")
	)
	flag.Parse()

	var pts []rtree.PointEntry
	switch *kind {
	case "uniform":
		if *n <= 0 {
			fatalf("-n is required for uniform data")
		}
		pts = workload.Uniform(*n, *seed)
	case "gaussian":
		if *n <= 0 {
			fatalf("-n is required for gaussian data")
		}
		pts = workload.GaussianClusters(*n, *clusters, *sigma, *seed)
	case "pp":
		pts = workload.RealLike(workload.PP, *n)
	case "sc":
		pts = workload.RealLike(workload.SC, *n)
	case "lo":
		pts = workload.RealLike(workload.LO, *n)
	default:
		fatalf("unknown kind %q", *kind)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := workload.WritePoints(w, pts); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d points\n", len(pts))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
