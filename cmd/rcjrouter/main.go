// Command rcjrouter is the scatter-gather front of a sharded RCJ
// deployment: it reads a shard manifest (.rcjm), maps shards onto a fleet
// of rcjd workers, and serves the same POST /join a single rcjd would —
// planning which shards each query touches, fanning sub-queries out with
// bounded concurrency and per-shard failover, and merging the streams back
// into one byte-identical answer.
//
// Usage:
//
//	# Workers own everything the manifest lists:
//	rcjrouter -addr :9090 -manifest data.rcjm \
//	          -worker http://10.0.0.1:8080 -worker http://10.0.0.2:8080
//
//	# Or pin shards to workers (replicas allowed; they serve as failover):
//	rcjrouter -manifest data.rcjm \
//	          -worker http://10.0.0.1:8080=0,1 -worker http://10.0.0.2:8080=2,3
//
//	curl -sN localhost:9090/join -d '{"p":"p","q":"q","format":"csv"}'
//	curl -s  localhost:9090/shards    # the plan: cells, counts, owners
//	curl -s  localhost:9090/healthz   # fleet health, 503 if any worker down
//	curl -s  'localhost:9090/metrics?format=prom'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/shard"
)

func main() {
	var (
		addr       = flag.String("addr", ":9090", "listen address")
		manifest   = flag.String("manifest", "", "shard manifest (.rcjm) describing the dataset (required)")
		fanout     = flag.Int("fanout", 4, "max concurrent sub-queries per join")
		retries    = flag.Int("retries", 1, "extra attempts per failed sub-query, each on the shard's next owner")
		subTimeout = flag.Duration("subquery-timeout", 0, "per-sub-query deadline (0 = request deadline only)")
		planMode   = flag.String("plan", "auto", `algorithm default for requests that name none: "auto" lets each worker's planner decide per shard, "fixed" pins the classic OBJ`)
	)
	var workers []router.Worker
	flag.Func("worker", "rcjd worker, as url (owns all shards) or url=0,2,5 (owns those shards); repeatable", func(v string) error {
		w := router.Worker{URL: v}
		// Shard lists attach after the last "=" so URLs with query strings
		// still parse; a trailing piece that is not a comma-separated int
		// list is part of the URL.
		if i := strings.LastIndex(v, "="); i >= 0 {
			if ids, ok := parseIDs(v[i+1:]); ok {
				w.URL, w.Shards = v[:i], ids
			}
		}
		w.URL = strings.TrimRight(w.URL, "/")
		if w.URL == "" {
			return fmt.Errorf("empty worker URL in %q", v)
		}
		workers = append(workers, w)
		return nil
	})
	flag.Parse()

	if *manifest == "" {
		fmt.Fprintln(os.Stderr, "rcjrouter: -manifest is required")
		flag.Usage()
		os.Exit(2)
	}
	if len(workers) == 0 {
		fmt.Fprintln(os.Stderr, "rcjrouter: at least one -worker is required")
		flag.Usage()
		os.Exit(2)
	}
	if *planMode != "auto" && *planMode != "fixed" {
		fmt.Fprintf(os.Stderr, "rcjrouter: -plan must be auto or fixed, got %q\n", *planMode)
		flag.Usage()
		os.Exit(2)
	}
	m, err := shard.Load(*manifest)
	if err != nil {
		fatalf("%v", err)
	}
	rt, err := router.New(router.Config{
		Manifest:   m,
		Workers:    workers,
		Fanout:     *fanout,
		Retries:    *retries,
		SubTimeout: *subTimeout,
		FixedPlan:  *planMode == "fixed",
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	srv := &http.Server{Handler: rt.Handler()}
	populated := 0
	for _, sh := range m.Shards {
		if !sh.Empty() {
			populated++
		}
	}
	fmt.Fprintf(os.Stderr, "rcjrouter: serving %s (%d shards, %dx%d grid) on %s with %d workers\n",
		m.Name, populated, m.GridNX, m.GridNY, ln.Addr(), len(workers))

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		fatalf("%v", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "rcjrouter: shutdown signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
		fatalf("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "rcjrouter: drained, exiting")
}

func parseIDs(s string) ([]int, bool) {
	if s == "" {
		return nil, false
	}
	var ids []int
	for _, f := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, false
		}
		ids = append(ids, id)
	}
	return ids, true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rcjrouter: "+format+"\n", args...)
	os.Exit(1)
}
