// Command rcjjoin computes the ring-constrained join of two CSV pointsets
// and writes the result pairs — with their derived fair middleman locations —
// as CSV.
//
// Usage:
//
//	rcjjoin -p restaurants.csv -q residences.csv > stations.csv
//	rcjjoin -p buildings.csv -self > postboxes.csv         # self-join
//	rcjjoin -p a.csv -q b.csv -metric l1 -sort             # Manhattan, sorted
//
// Input rows are "id,x,y" or "x,y" (ids assigned in file order). Output rows
// are "p_id,q_id,center_x,center_y,radius", one per RCJ pair, optionally in
// ascending ring-diameter order (-sort).
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"repro/internal/workload"
	"repro/rcj"
)

func main() {
	var (
		pPath  = flag.String("p", "", "CSV file of dataset P (required)")
		qPath  = flag.String("q", "", "CSV file of dataset Q (omit with -self)")
		self   = flag.Bool("self", false, "compute the self-join of P")
		metric = flag.String("metric", "l2", "distance metric: l2 (Euclidean) or l1 (Manhattan)")
		sorted = flag.Bool("sort", false, "sort output by ascending ring diameter")
		algStr = flag.String("alg", "obj", "algorithm: inj, bij, obj")
	)
	flag.Parse()

	if *pPath == "" || (!*self && *qPath == "") {
		fmt.Fprintln(os.Stderr, "rcjjoin: -p is required, and -q unless -self")
		flag.Usage()
		os.Exit(2)
	}

	alg, ok := map[string]rcj.Algorithm{"inj": rcj.INJ, "bij": rcj.BIJ, "obj": rcj.OBJ}[*algStr]
	if !ok {
		fatalf("unknown algorithm %q", *algStr)
	}

	ixP := loadIndex(*pPath)
	defer ixP.Close()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	cw := csv.NewWriter(out)
	defer cw.Flush()

	switch *metric {
	case "l2":
		var (
			pairs []rcj.Pair
			stats rcj.Stats
			err   error
		)
		opts := rcj.JoinOptions{Algorithm: alg, ForceAlgorithm: true, SortByDiameter: *sorted}
		if *self {
			pairs, stats, err = rcj.SelfJoin(ixP, opts)
		} else {
			ixQ := loadIndex(*qPath)
			defer ixQ.Close()
			pairs, stats, err = rcj.Join(ixQ, ixP, opts)
		}
		if err != nil {
			fatalf("join: %v", err)
		}
		for _, pr := range pairs {
			writePair(cw, pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)
		}
		fmt.Fprintf(os.Stderr, "rcjjoin: %d pairs (%d candidates verified, %d page faults)\n",
			stats.Results, stats.Candidates, stats.PageFaults)
	case "l1":
		var (
			pairs []rcj.L1Pair
			stats rcj.Stats
			err   error
		)
		if *self {
			pairs, stats, err = rcj.SelfJoinL1(ixP)
		} else {
			ixQ := loadIndex(*qPath)
			defer ixQ.Close()
			pairs, stats, err = rcj.JoinL1(ixQ, ixP)
		}
		if err != nil {
			fatalf("join: %v", err)
		}
		if *sorted {
			sort.Slice(pairs, func(i, j int) bool { return pairs[i].Radius < pairs[j].Radius })
		}
		for _, pr := range pairs {
			writePair(cw, pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)
		}
		fmt.Fprintf(os.Stderr, "rcjjoin: %d pairs (L1 metric, %d candidates verified)\n",
			stats.Results, stats.Candidates)
	default:
		fatalf("unknown metric %q (want l2 or l1)", *metric)
	}
}

func loadIndex(path string) *rcj.Index {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	entries, err := workload.ReadPoints(bufio.NewReader(f))
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	pts := make([]rcj.Point, len(entries))
	for i, e := range entries {
		pts[i] = rcj.Point{X: e.P.X, Y: e.P.Y, ID: e.ID}
	}
	ix, err := rcj.BuildIndex(pts, rcj.IndexConfig{})
	if err != nil {
		fatalf("index %s: %v", path, err)
	}
	return ix
}

func writePair(cw *csv.Writer, pid, qid int64, cx, cy, r float64) {
	rec := []string{
		strconv.FormatInt(pid, 10),
		strconv.FormatInt(qid, 10),
		strconv.FormatFloat(cx, 'f', 6, 64),
		strconv.FormatFloat(cy, 'f', 6, 64),
		strconv.FormatFloat(r, 'f', 6, 64),
	}
	if err := cw.Write(rec); err != nil {
		fatalf("write: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rcjjoin: "+format+"\n", args...)
	os.Exit(1)
}
