// Command rcjjoin computes the ring-constrained join of two pointsets and
// writes the result pairs — with their derived fair middleman locations —
// as CSV.
//
// Usage:
//
//	rcjjoin -p restaurants.csv -q residences.csv > stations.csv
//	rcjjoin -p buildings.csv -self > postboxes.csv         # self-join
//	rcjjoin -p a.csv -q b.csv -metric l1 -sort             # Manhattan, sorted
//	rcjjoin -p a.csv -q b.csv -parallel 8                  # multi-core join
//
//	# Constrained queries (predicate pushdown — the index traversal is
//	# pruned, not the materialized result):
//	rcjjoin -p a.csv -q b.csv -top-k 10                    # the 10 tightest pairs
//	rcjjoin -p a.csv -q b.csv -max-diameter 250            # pairs at most 250 wide
//	rcjjoin -p a.csv -q b.csv -region 1000,1000,5000,5000  # middleman in window
//	rcjjoin -p a.csv -q b.csv -limit 100                   # first 100 pairs found
//
//	# Persist the built indexes, then join again without rebuilding:
//	rcjjoin -p a.csv -q b.csv -save-index-p a.rcjx -save-index-q b.rcjx > out.csv
//	rcjjoin -p a.rcjx -q b.rcjx -backend mmap > out.csv
//
//	# Same, but write the compact packed v3 format (delta/varint leaf
//	# pages); every backend reads it transparently:
//	rcjjoin -p a.csv -q b.csv -save-index-p a.rcjx -save-packed > out.csv
//
//	# Join saved indexes served by any range-capable HTTP server — no
//	# shared filesystem; pages fetch lazily, checksum-verified, with async
//	# readahead:
//	rcjjoin -p https://indexes.example.com/a.rcjx -q https://indexes.example.com/b.rcjx > out.csv
//
//	# Dump an index's points back out as ID-sorted "id,x,y" CSV (the
//	# canonical rebuild input — re-indexing a dump reproduces the index):
//	rcjjoin -p a.rcjx -dump-points > a.csv
//
// Each of -p and -q accepts a CSV pointset ("id,x,y" or "x,y" rows, ids
// assigned in file order), a saved index file written by -save-index-*
// (detected by its magic, conventionally named ".rcjx"), or an http(s) URL
// of a saved index; index inputs skip the build entirely and are served
// through the backend chosen with -backend (URLs imply -backend http).
// Output rows are "p_id,q_id,center_x,center_y,radius", one per RCJ pair.
// Results stream as the join finds them; -sort buffers them for ascending
// ring-diameter order instead. Interrupting the process (Ctrl-C) cancels
// the join cleanly.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"iter"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"path/filepath"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/shard"
	"repro/internal/workload"
	"repro/rcj"
)

func main() {
	var (
		pPath    = flag.String("p", "", "CSV file of dataset P (required)")
		qPath    = flag.String("q", "", "CSV file of dataset Q (omit with -self)")
		self     = flag.Bool("self", false, "compute the self-join of P")
		metric   = flag.String("metric", "l2", "distance metric: l2 (Euclidean) or l1 (Manhattan)")
		sorted   = flag.Bool("sort", false, "sort output by ascending ring diameter (buffers all pairs)")
		algStr   = flag.String("alg", "", "algorithm: auto, inj, bij, obj, brute (default: auto — the cost-based planner decides; or obj under -plan=fixed)")
		planMode = flag.String("plan", "auto", `plan resolution when -alg names no algorithm: "auto" lets the cost-based planner pick, "fixed" pins the classic obj`)
		parallel = flag.Int("parallel", 1, "worker goroutines for the join")
		bufPages = flag.Int("buffer", 0, "shared buffer pool size in pages (0 = unbounded)")
		saveP    = flag.String("save-index-p", "", "after building P's index, save it to this file (skip the build next run by passing it as -p)")
		saveQ    = flag.String("save-index-q", "", "after building Q's index, save it to this file")
		savePack = flag.Bool("save-packed", false, "write -save-index-* files in the packed v3 format (compressed leaf pages, ~half the size)")
		backend  = flag.String("backend", "file", "pager backend for saved-index inputs: mem, file, mmap, or http (implied by URL inputs)")
		timeout  = flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
		topK     = flag.Int("top-k", 0, "return only the k tightest pairs, in ascending ring-diameter order (pushdown)")
		maxDiam  = flag.Float64("max-diameter", 0, "return only pairs with ring diameter at most this (pushdown)")
		minDist  = flag.Float64("min-distance", 0, "drop pairs whose points are closer than this")
		limit    = flag.Int("limit", 0, "stop after this many pairs")
		region   = flag.String("region", "", "window the middleman location must fall in, as minX,minY,maxX,maxY (pushdown)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
		dumpPts  = flag.Bool("dump-points", false, "instead of joining, write P's points as ID-sorted id,x,y CSV and exit (-q not needed)")
		shardN   = flag.Int("save-shards", 0, "instead of joining, partition the inputs into this many spatial shards for a rcjd/rcjrouter deployment")
		shardOut = flag.String("shards-out", "", "manifest path for -save-shards (.rcjm; shard .rcjx files are written next to it)")
		shardD   = flag.Float64("shard-max-diameter", 0, "diameter bound baked into the -save-shards manifest (default: -max-diameter)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		profileStops = append(profileStops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
		defer stopProfiles()
	}
	if *memProf != "" {
		path := *memProf
		profileStops = append(profileStops, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rcjjoin: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rcjjoin: -memprofile: %v\n", err)
			}
		})
		defer stopProfiles()
	}

	if *pPath == "" || (!*self && !*dumpPts && *qPath == "") {
		fmt.Fprintln(os.Stderr, "rcjjoin: -p is required, and -q unless -self or -dump-points")
		flag.Usage()
		os.Exit(2)
	}
	if *self && *saveQ != "" {
		fatalf("-save-index-q has no effect with -self (Q is never loaded); use -save-index-p")
	}

	if *planMode != "auto" && *planMode != "fixed" {
		fatalf("-plan must be auto or fixed, got %q", *planMode)
	}
	alg, ok := map[string]rcj.Algorithm{"": 0, "auto": 0, "inj": rcj.INJ, "bij": rcj.BIJ, "obj": rcj.OBJ, "brute": rcj.Brute}[*algStr]
	if !ok {
		fatalf("unknown algorithm %q", *algStr)
	}
	forced := *algStr != "" && *algStr != "auto"
	if !forced && *planMode == "fixed" {
		alg, forced = rcj.OBJ, true
	}
	be, err := rcj.ParseBackend(*backend)
	if err != nil {
		fatalf("%v", err)
	}

	qry := rcj.Query{
		Algorithm:      alg,
		ForceAlgorithm: forced,
		Parallelism:    *parallel,
		TopK:           *topK,
		MaxDiameter:    *maxDiam,
		MinDistance:    *minDist,
		Limit:          *limit,
	}
	var plan rcj.PlanDecision
	qry.PlanOut = &plan
	if *region != "" {
		qry.Region = parseRegion(*region)
	}
	if err := qry.Validate(); err != nil {
		fatalf("%v", err)
	}
	constrained := qry.TopK > 0 || qry.MaxDiameter > 0 || qry.MinDistance > 0 || qry.Limit > 0 || qry.Region != nil
	if constrained && *metric != "l2" {
		fatalf("-top-k/-max-diameter/-min-distance/-limit/-region require -metric l2")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		// A deadline so batch runs against huge inputs fail cleanly instead
		// of hanging forever; the join aborts mid-leaf like a Ctrl-C would.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: *bufPages})
	loadIndex := func(path, save string) *rcj.Index {
		return loadOrOpenIndex(eng, path, be, save, *savePack)
	}
	ixP := loadIndex(*pPath, *saveP)
	defer ixP.Close()

	if *dumpPts {
		// Point dumping replaces the join: emit P's points as id,x,y rows in
		// ascending ID order — the canonical input order, so rebuilding an
		// index from the dump reproduces it byte-for-byte.
		pts, err := ixP.Points()
		if err != nil {
			fatalf("read points of %s: %v", *pPath, err)
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].ID < pts[j].ID })
		entries := make([]rtree.PointEntry, len(pts))
		for i, p := range pts {
			entries[i] = rtree.PointEntry{P: geom.Point{X: p.X, Y: p.Y}, ID: p.ID}
		}
		out := bufio.NewWriter(os.Stdout)
		if err := workload.WritePoints(out, entries); err != nil {
			fatalf("dump points: %v", err)
		}
		if err := out.Flush(); err != nil {
			fatalf("dump points: %v", err)
		}
		fmt.Fprintf(os.Stderr, "rcjjoin: dumped %d points from %s\n", len(entries), *pPath)
		return
	}

	if *shardN > 0 {
		// Shard emission replaces the join: partition the inputs, write the
		// per-shard .rcjx files and the .rcjm manifest, and exit.
		if *shardOut == "" {
			fatalf("-save-shards requires -shards-out manifest.rcjm")
		}
		bound := *shardD
		if bound == 0 {
			bound = *maxDiam
		}
		if bound <= 0 {
			fatalf("-save-shards needs a diameter bound: set -shard-max-diameter (or -max-diameter)")
		}
		pPts, err := ixP.Points()
		if err != nil {
			fatalf("read points of %s: %v", *pPath, err)
		}
		var qPts []rcj.Point
		if !*self {
			ixQ := loadIndex(*qPath, *saveQ)
			defer ixQ.Close()
			if qPts, err = ixQ.Points(); err != nil {
				fatalf("read points of %s: %v", *qPath, err)
			}
		}
		name := strings.TrimSuffix(filepath.Base(*shardOut), shard.Ext)
		m, err := shard.Build(*shardOut, pPts, qPts, shard.BuildConfig{
			Shards: *shardN, MaxDiameter: bound, Name: name, Self: *self, Packed: *savePack,
		})
		if err != nil {
			fatalf("shard build: %v", err)
		}
		populated := 0
		for _, sh := range m.Shards {
			if !sh.Empty() {
				populated++
			}
		}
		fmt.Fprintf(os.Stderr, "rcjjoin: wrote %d shards (%dx%d grid, margin %g) and manifest %s\n",
			populated, m.GridNX, m.GridNY, m.Margin, *shardOut)
		return
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	cw := csv.NewWriter(out)
	defer cw.Flush()

	switch *metric {
	case "l2":
		var st rcj.Stats
		qry.Stats = &st
		prunedNote := func() string {
			if constrained {
				return fmt.Sprintf(", %d nodes pruned", st.NodesPruned)
			}
			return ""
		}
		if *sorted {
			// Materialize, sort, then write.
			qry.SortByDiameter = true
			var (
				pairs []rcj.Pair
				err   error
			)
			if *self {
				pairs, _, err = eng.RunSelfCollect(ctx, ixP, qry)
			} else {
				ixQ := loadIndex(*qPath, *saveQ)
				defer ixQ.Close()
				pairs, _, err = eng.RunCollect(ctx, ixQ, ixP, qry)
			}
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					fatalf("join timed out after %v", *timeout)
				}
				fatalf("join: %v", err)
			}
			for _, pr := range pairs {
				writePair(cw, pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)
			}
			fmt.Fprintf(os.Stderr, "rcjjoin: plan: %s\n", plan)
			fmt.Fprintf(os.Stderr, "rcjjoin: %d pairs (%d candidates verified, %d page faults%s)\n",
				st.Results, st.Candidates, st.PageFaults, prunedNote())
			reportRemote()
			return
		}
		// Streaming mode: rows go out as the join confirms them (a -top-k
		// run emits its ranked pairs together once the traversal finishes).
		var seq iter.Seq2[rcj.Pair, error]
		if *self {
			seq = eng.RunSelf(ctx, ixP, qry)
		} else {
			ixQ := loadIndex(*qPath, *saveQ)
			defer ixQ.Close()
			seq = eng.Run(ctx, ixQ, ixP, qry)
		}
		results := 0
		for pr, err := range seq {
			if err != nil {
				// fatalf exits without running the deferred flushes; push the
				// already-streamed rows out so the file matches the count.
				cw.Flush()
				out.Flush()
				if errors.Is(err, context.Canceled) {
					fatalf("join cancelled after %d pairs", results)
				}
				if errors.Is(err, context.DeadlineExceeded) {
					fatalf("join timed out after %v (%d pairs streamed)", *timeout, results)
				}
				fatalf("join: %v", err)
			}
			writePair(cw, pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)
			results++
		}
		fmt.Fprintf(os.Stderr, "rcjjoin: plan: %s\n", plan)
		fmt.Fprintf(os.Stderr, "rcjjoin: %d pairs streamed (%d page faults%s)\n", results, st.PageFaults, prunedNote())
		reportRemote()
	case "l1":
		var (
			pairs []rcj.L1Pair
			stats rcj.Stats
			err   error
		)
		if *self {
			pairs, stats, err = rcj.SelfJoinL1Context(ctx, ixP)
		} else {
			ixQ := loadIndex(*qPath, *saveQ)
			defer ixQ.Close()
			pairs, stats, err = rcj.JoinL1Context(ctx, ixQ, ixP)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fatalf("join cancelled")
			}
			if errors.Is(err, context.DeadlineExceeded) {
				fatalf("join timed out after %v", *timeout)
			}
			fatalf("join: %v", err)
		}
		if *sorted {
			sort.Slice(pairs, func(i, j int) bool { return pairs[i].Radius < pairs[j].Radius })
		}
		for _, pr := range pairs {
			writePair(cw, pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)
		}
		fmt.Fprintf(os.Stderr, "rcjjoin: %d pairs (L1 metric, %d candidates verified)\n",
			stats.Results, stats.Candidates)
		reportRemote()
	default:
		fatalf("unknown metric %q (want l2 or l1)", *metric)
	}
}

// remoteIxs collects every index opened during the run so the success paths
// can report remote transfer counters; indexes without an http backend are
// skipped at print time (RemoteStats reports ok=false).
var remoteIxs []*rcj.Index

// reportRemote prints one stderr line per http-backed index summarizing the
// transfer work the join cost — and how much of it was avoided by the
// single-flight dedupe (shared) and adjacent-page coalescing (coalesced).
func reportRemote() {
	for _, ix := range remoteIxs {
		rs, ok := ix.RemoteStats()
		if !ok {
			continue
		}
		fmt.Fprintf(os.Stderr, "rcjjoin: remote: %d fetches, %d KiB, %d shared, %d coalesced, %d retries\n",
			rs.Fetches, rs.BytesFetched/1024, rs.SharedFetches, rs.CoalescedFetches, rs.Retries)
	}
}

// loadOrOpenIndex turns one -p/-q argument into a ready index: an http(s)
// URL opens as a remote index (range requests, per-page checksums, async
// readahead); a saved index file (recognized by its magic) is reopened
// through the chosen backend with no build; anything else is read as a CSV
// pointset and indexed. When save is non-empty the index is persisted there,
// so the next run can pass the saved file instead of the CSV and skip the
// build entirely. savePacked selects the packed (v3, compressed) format for
// that file; saved indexes of either format reopen identically.
func loadOrOpenIndex(eng *rcj.Engine, path string, backend rcj.Backend, save string, savePacked bool) *rcj.Index {
	var ix *rcj.Index
	if rcj.IsIndexURL(path) || rcj.IsIndexFile(path) {
		var err error
		ix, err = eng.OpenIndex(path, rcj.IndexConfig{Backend: backend})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "rcjjoin: opened index %s (%d points, %s backend)\n", path, ix.Len(), ix.Backend())
		remoteIxs = append(remoteIxs, ix)
	} else {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		entries, err := workload.ReadPoints(bufio.NewReader(f))
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		pts := make([]rcj.Point, len(entries))
		for i, e := range entries {
			pts[i] = rcj.Point{X: e.P.X, Y: e.P.Y, ID: e.ID}
		}
		ix, err = eng.BuildIndex(pts, rcj.IndexConfig{})
		if err != nil {
			fatalf("index %s: %v", path, err)
		}
	}
	if save != "" {
		saveFn, format := ix.Save, "v2"
		if savePacked {
			saveFn, format = ix.SavePacked, "packed v3"
		}
		if err := saveFn(save); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "rcjjoin: saved index %s (%d points, %s)\n", save, ix.Len(), format)
	}
	return ix
}

// parseRegion parses a -region flag: four comma-separated floats,
// minX,minY,maxX,maxY.
func parseRegion(s string) *rcj.Rect {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		fatalf("-region wants minX,minY,maxX,maxY, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fatalf("-region: bad number %q", p)
		}
		vals[i] = v
	}
	return &rcj.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
}

func writePair(cw *csv.Writer, pid, qid int64, cx, cy, r float64) {
	rec := []string{
		strconv.FormatInt(pid, 10),
		strconv.FormatInt(qid, 10),
		strconv.FormatFloat(cx, 'f', 6, 64),
		strconv.FormatFloat(cy, 'f', 6, 64),
		strconv.FormatFloat(r, 'f', 6, 64),
	}
	if err := cw.Write(rec); err != nil {
		fatalf("write: %v", err)
	}
}

// profileStops flushes the -cpuprofile/-memprofile outputs; run from the
// deferred success path and from fatalf (os.Exit skips defers, and a
// truncated CPU profile is useless).
var profileStops []func()

func stopProfiles() {
	for _, fn := range profileStops {
		fn()
	}
	profileStops = nil
}

func fatalf(format string, args ...any) {
	stopProfiles()
	fmt.Fprintf(os.Stderr, "rcjjoin: "+format+"\n", args...)
	os.Exit(1)
}
