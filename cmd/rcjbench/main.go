// Command rcjbench regenerates the tables and figures of the paper's
// experimental evaluation (Section 5).
//
// Usage:
//
//	rcjbench -exp table4            # one experiment
//	rcjbench -exp fig16 -scale 1    # at full paper cardinalities
//	rcjbench -exp all -scale 0.1    # everything, 10% scale (default)
//
// Experiments: table4, fig10, fig11, fig12, fig13, fig14, fig15, fig16,
// fig17, fig18 (the paper's evaluation); ablate, costmodel, resultsize
// (this library's extension studies); all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		expName    = flag.String("exp", "all", "experiment id: table4, fig10..fig18, or all")
		scale      = flag.Float64("scale", 0.1, "dataset cardinality scale vs the paper (1 = full scale)")
		bufferFrac = flag.Float64("buffer", 0.01, "buffer size as a fraction of total tree sizes")
		pageSize   = flag.Int("pagesize", 1024, "index page size in bytes")
	)
	flag.Parse()

	// Ctrl-C cancels the in-flight join instead of killing mid-sweep: the
	// experiment drivers thread this context into every core.JoinContext.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := exp.Config{Scale: *scale, BufferFrac: *bufferFrac, PageSize: *pageSize, W: os.Stdout, Ctx: ctx}

	type experiment struct {
		name string
		run  func(exp.Config) error
	}
	experiments := []experiment{
		{"table4", func(c exp.Config) error { _, err := exp.Table4(c); return err }},
		{"fig10", func(c exp.Config) error { _, err := exp.Fig10(c); return err }},
		{"fig11", func(c exp.Config) error { _, err := exp.Fig11(c); return err }},
		{"fig12", func(c exp.Config) error { _, err := exp.Fig12(c); return err }},
		{"fig13", func(c exp.Config) error { _, err := exp.Fig13(c); return err }},
		{"fig14", func(c exp.Config) error { _, err := exp.Fig14(c); return err }},
		{"fig15", func(c exp.Config) error { _, err := exp.Fig15(c); return err }},
		{"fig16", func(c exp.Config) error { _, err := exp.Fig16(c); return err }},
		{"fig17", func(c exp.Config) error { _, err := exp.Fig17(c); return err }},
		{"fig18", func(c exp.Config) error { _, err := exp.Fig18(c); return err }},
		{"ablate", func(c exp.Config) error { _, err := exp.Ablations(c); return err }},
		{"costmodel", func(c exp.Config) error { _, err := exp.CostModel(c); return err }},
		{"resultsize", func(c exp.Config) error { _, err := exp.ResultSize(c); return err }},
		{"network", func(c exp.Config) error { _, err := exp.Network(c); return err }},
	}

	want := strings.ToLower(*expName)
	ran := false
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		start := time.Now()
		if err := e.run(cfg); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "rcjbench: %s: interrupted\n", e.name)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "rcjbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "rcjbench: unknown experiment %q\n", *expName)
		flag.Usage()
		os.Exit(2)
	}
}
